"""Benchmark the batch engine: serial vs multiprocessing on a t2-style sweep.

The workload is the acceptance sweep — Balls-into-Leaves at n=64 over 100
seeds — run through both executors.  On a multi-core box the process
backend must beat serial wall-clock with >= 4 workers; on boxes without 4
cores the speedup assertions skip (pool overhead cannot win on one core)
while the determinism assertions still run everywhere.

The chunking benchmark isolates the MultiprocessingExecutor fix: tasks
ship in per-worker chunks (so a worker's process-local cached_topology
is built once per size, not once per submission) instead of the
chunksize=1 degenerate case that pays one IPC round-trip and a fresh
task pickle per trial.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.sim.batch import MultiprocessingExecutor, ScenarioMatrix, run_batch


def _sweep_matrix(trials: int = 100) -> ScenarioMatrix:
    return ScenarioMatrix.build(
        ["balls-into-leaves"], [64], ["none"], trials=trials, base_seed=0
    )


def test_bench_batch_serial(benchmark):
    result = benchmark.pedantic(
        run_batch, args=(_sweep_matrix(),), kwargs={"executor": "serial"},
        iterations=1, rounds=3,
    )
    assert len(result) == 100


def test_bench_batch_process(benchmark):
    workers = min(4, os.cpu_count() or 1)
    result = benchmark.pedantic(
        run_batch, args=(_sweep_matrix(),),
        kwargs={"executor": "process", "workers": workers},
        iterations=1, rounds=3,
    )
    assert len(result) == 100


def test_process_backend_matches_serial_everywhere():
    matrix = _sweep_matrix(trials=20)
    assert (
        run_batch(matrix, executor="serial").trials
        == run_batch(matrix, executor="process", workers=2).trials
    )


@pytest.mark.tier2  # wall-clock comparison: too flaky for the -x tier-1 gate
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 cores; pool overhead cannot win on fewer",
)
def test_parallel_speedup_on_four_workers():
    matrix = _sweep_matrix()
    # Warm both paths once so interpreter/pool startup is off the clock.
    run_batch(ScenarioMatrix.build(["balls-into-leaves"], [8], trials=2))

    started = time.perf_counter()
    serial = run_batch(matrix, executor="serial")
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_batch(matrix, executor="process", workers=4)
    parallel_s = time.perf_counter() - started

    assert serial.trials == parallel.trials
    assert parallel_s < serial_s, (
        f"process backend ({parallel_s:.2f}s) did not beat serial ({serial_s:.2f}s) "
        "on 4 workers"
    )


def test_chunksize_is_configurable_and_invisible_in_results():
    """Any chunksize produces byte-identical results (perf knob only)."""
    matrix = _sweep_matrix(trials=12)
    default = run_batch(matrix, executor="process", workers=2)
    per_trial = run_batch(matrix, executor="process", workers=2, chunksize=1)
    assert default.trials == per_trial.trials


@pytest.mark.tier2  # wall-clock comparison: too flaky for the -x tier-1 gate
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="chunking wins need real parallelism; skip on small boxes",
)
def test_worker_chunking_beats_per_trial_submission():
    """Chunked task shipping must beat chunksize=1 on a multi-size sweep.

    The sweep mixes sizes so per-trial submission also pays repeated
    process-local topology rebuilds when trials of different n
    interleave across workers; chunked shipping keeps same-cell runs
    together.  Reference kernel pins the per-trial path so the columnar/
    vectorized engines don't mask the executor cost being measured.
    """
    matrix = ScenarioMatrix.build(
        ["balls-into-leaves"], [64, 256], ["none"],
        trials=40, base_seed=0, kernel="reference",
    )
    executor_chunked = MultiprocessingExecutor(4)
    executor_degenerate = MultiprocessingExecutor(4, chunksize=1)
    run_batch(_sweep_matrix(trials=4), executor=executor_chunked)  # warm pools

    started = time.perf_counter()
    chunked = run_batch(matrix, executor=executor_chunked)
    chunked_s = time.perf_counter() - started

    started = time.perf_counter()
    degenerate = run_batch(matrix, executor=executor_degenerate)
    degenerate_s = time.perf_counter() - started

    assert chunked.trials == degenerate.trials
    assert chunked_s < degenerate_s, (
        f"chunked shipping ({chunked_s:.2f}s) did not beat per-trial "
        f"submission ({degenerate_s:.2f}s)"
    )
