"""Benchmark the batch engine: serial vs multiprocessing on a t2-style sweep.

The workload is the acceptance sweep — Balls-into-Leaves at n=64 over 100
seeds — run through both executors.  On a multi-core box the process
backend must beat serial wall-clock with >= 4 workers; on boxes without 4
cores the speedup assertion skips (pool overhead cannot win on one core)
while the determinism assertion still runs everywhere.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.sim.batch import ScenarioMatrix, run_batch


def _sweep_matrix(trials: int = 100) -> ScenarioMatrix:
    return ScenarioMatrix.build(
        ["balls-into-leaves"], [64], ["none"], trials=trials, base_seed=0
    )


def test_bench_batch_serial(benchmark):
    result = benchmark.pedantic(
        run_batch, args=(_sweep_matrix(),), kwargs={"executor": "serial"},
        iterations=1, rounds=3,
    )
    assert len(result) == 100


def test_bench_batch_process(benchmark):
    workers = min(4, os.cpu_count() or 1)
    result = benchmark.pedantic(
        run_batch, args=(_sweep_matrix(),),
        kwargs={"executor": "process", "workers": workers},
        iterations=1, rounds=3,
    )
    assert len(result) == 100


def test_process_backend_matches_serial_everywhere():
    matrix = _sweep_matrix(trials=20)
    assert (
        run_batch(matrix, executor="serial").trials
        == run_batch(matrix, executor="process", workers=2).trials
    )


@pytest.mark.tier2  # wall-clock comparison: too flaky for the -x tier-1 gate
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 cores; pool overhead cannot win on fewer",
)
def test_parallel_speedup_on_four_workers():
    matrix = _sweep_matrix()
    # Warm both paths once so interpreter/pool startup is off the clock.
    run_batch(ScenarioMatrix.build(["balls-into-leaves"], [8], trials=2))

    started = time.perf_counter()
    serial = run_batch(matrix, executor="serial")
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_batch(matrix, executor="process", workers=4)
    parallel_s = time.perf_counter() - started

    assert serial.trials == parallel.trials
    assert parallel_s < serial_s, (
        f"process backend ({parallel_s:.2f}s) did not beat serial ({serial_s:.2f}s) "
        "on 4 workers"
    )
