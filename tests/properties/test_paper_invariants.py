"""Executable checks of the paper's stated invariants on real traces.

* Lemma 1  — capacity invariant in every (reference) view, every phase.
* Lemma 2  — path isolation: balls never join a root path from outside,
  equivalently every ball's position interval only ever narrows.
* Prop. 1  — correct balls' positions agree across views at phase ends.
* Section 5.2 — a path's total gateway capacity equals its ball count.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary.random_crash import RandomCrashAdversary
from repro.core.balls_into_leaves import build_balls_into_leaves
from repro.core.config import BallsIntoLeavesConfig
from repro.ids import sparse_ids
from repro.sim.simulator import Simulation
from repro.tree import node as nd
from repro.tree.topology import Topology


def run_capturing_positions(n, seed, adversary=None, view_mode="shared"):
    """Drive a run, returning per-position-round snapshots of the views."""
    config = BallsIntoLeavesConfig(path_policy="random", view_mode=view_mode)
    processes, store = build_balls_into_leaves(sparse_ids(n), seed=seed, config=config)
    snapshots = []

    def observer(simulation, round_no):
        if round_no < 3 or round_no % 2 == 0:
            return
        per_view = {}
        for pid in simulation.alive():
            try:
                view = store.view_of(pid)
            except Exception:
                continue
            per_view[pid] = dict(
                (ball, view.position(ball)) for ball in view.balls()
            )
        snapshots.append(per_view)

    simulation = Simulation(
        processes, adversary=adversary, max_rounds=10 * n + 16, observers=[observer]
    )
    simulation.run()
    return snapshots, simulation


class TestPathIsolation:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_positions_only_narrow(self, seed):
        """Lemma 2, per ball: position intervals form a containment chain."""
        snapshots, _sim = run_capturing_positions(12, seed)
        previous = {}
        for per_view in snapshots:
            for pid, positions in per_view.items():
                for ball, position in positions.items():
                    key = (pid, ball)
                    if key in previous:
                        assert nd.contains(previous[key], position), (
                            f"ball {ball} moved upward/sideways in view of {pid}"
                        )
                    previous[key] = position

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_positions_narrow_under_crashes(self, seed):
        snapshots, sim = run_capturing_positions(
            12, seed, adversary=RandomCrashAdversary(0.1, seed=seed)
        )
        previous = {}
        for per_view in snapshots:
            for pid, positions in per_view.items():
                for ball, position in positions.items():
                    key = (pid, ball)
                    if key in previous:
                        assert nd.contains(previous[key], position)
                    previous[key] = position


class TestProposition1:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_correct_positions_agree_across_views(self, seed):
        snapshots, sim = run_capturing_positions(
            10, seed, adversary=RandomCrashAdversary(0.15, seed=seed), view_mode="faithful"
        )
        crashed = sim.crashed
        for per_view in snapshots:
            correct_views = {
                pid: positions
                for pid, positions in per_view.items()
                if pid not in crashed
            }
            for ball in sparse_ids(10):
                if ball in crashed:
                    continue
                seen = {
                    positions[ball]
                    for positions in correct_views.values()
                    if ball in positions
                }
                assert len(seen) <= 1, f"views disagree on correct ball {ball}: {seen}"


class TestLemma1:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_correct_balls_respect_capacity_in_every_view(self, seed):
        snapshots, sim = run_capturing_positions(
            10, seed, adversary=RandomCrashAdversary(0.15, seed=seed), view_mode="faithful"
        )
        crashed = sim.crashed
        topo = Topology(10)
        for per_view in snapshots:
            for pid, positions in per_view.items():
                if pid in crashed:
                    continue
                # Count correct balls per subtree by brute force.
                counts = {}
                for ball, position in positions.items():
                    if ball in crashed:
                        continue
                    for node in topo.ancestors(position):
                        counts[node] = counts.get(node, 0) + 1
                for node, count in counts.items():
                    assert count <= nd.span(node), (
                        f"Lemma 1 violated at {node} in view of {pid}"
                    )


class TestGatewayIdentity:
    def test_gateway_capacity_equals_path_population(self):
        """Section 5.2's identity on the constructed Figure 4 view."""
        from repro.experiments.fig_path_view import (
            build_figure4_view,
            gateway_capacity_total,
        )

        view = build_figure4_view()
        path = view.topology.path_to_leaf(view.topology.root, 15)
        on_path = sum(view.occupancy(node) for node in path[:-1])
        assert on_path == 5
        assert gateway_capacity_total(view, 15) == on_path
