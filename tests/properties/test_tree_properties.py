"""Property-based tests for the tree substrate."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.paths import random_capacity_path
from repro.tree.priority import ordered_balls, priority_key
from repro.tree.topology import Topology


def recount(view: LocalTreeView):
    """Recompute subtree counts from positions, the slow way."""
    counts = {}
    for ball in view.balls():
        position = view.position(ball)
        for node in view.topology.ancestors(position):
            counts[node] = counts.get(node, 0) + 1
    return counts


@st.composite
def op_sequences(draw):
    """A tree size and a sequence of insert/place/remove operations."""
    n = draw(st.integers(min_value=1, max_value=12))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "place", "remove"]),
                st.integers(min_value=0, max_value=19),  # ball label
                st.integers(min_value=0, max_value=10_000),  # node selector
            ),
            max_size=40,
        )
    )
    return n, ops


def pick_node(topo: Topology, selector: int):
    nodes = topo.nodes()
    return nodes[selector % len(nodes)]


class TestViewConsistency:
    @settings(max_examples=150, deadline=None)
    @given(data=op_sequences())
    def test_counts_always_match_positions(self, data):
        n, ops = data
        topo = Topology(n)
        view = LocalTreeView(topo)
        for op, ball, selector in ops:
            if op == "insert" and ball not in view:
                view.insert(ball, pick_node(topo, selector))
            elif op == "place" and ball in view:
                view.place(ball, pick_node(topo, selector))
            elif op == "remove" and ball in view:
                view.remove(ball)
        expected = recount(view)
        for node in topo.nodes():
            assert view.subtree_balls(node) == expected.get(node, 0)
        assert view.balls_at_leaves() == sum(
            1 for b in view.balls() if nd.is_leaf(view.position(b))
        )
        assert view.all_at_leaves() == (view.balls_at_leaves() == len(view))

    @settings(max_examples=80, deadline=None)
    @given(data=op_sequences())
    def test_copy_detaches_state(self, data):
        n, ops = data
        topo = Topology(n)
        view = LocalTreeView(topo)
        for op, ball, selector in ops:
            if op == "insert" and ball not in view:
                view.insert(ball, pick_node(topo, selector))
        clone = view.copy()
        assert clone.snapshot() == view.snapshot()
        balls_before = len(view)
        for ball in list(clone.balls()):
            clone.remove(ball)
        # Emptying the clone must not disturb the original.
        assert len(view) == balls_before
        assert len(clone) == 0
        expected = recount(view)
        for node in topo.nodes():
            assert view.subtree_balls(node) == expected.get(node, 0)


class TestPriorityOrderProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=10),
        placements=st.lists(st.integers(min_value=0, max_value=10_000), max_size=12),
    )
    def test_strict_total_order(self, n, placements):
        topo = Topology(n)
        view = LocalTreeView(topo)
        for index, selector in enumerate(placements):
            view.insert(index, pick_node(topo, selector))
        order = ordered_balls(view)
        assert len(order) == len(view)
        keys = [priority_key(view, ball) for ball in order]
        for first, second in zip(keys, keys[1:]):
            assert first < second  # strictly increasing: total, antisymmetric

    @settings(max_examples=80, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=10),
        placements=st.lists(st.integers(min_value=0, max_value=10_000), max_size=12),
    )
    def test_deeper_always_precedes_shallower(self, n, placements):
        topo = Topology(n)
        view = LocalTreeView(topo)
        for index, selector in enumerate(placements):
            view.insert(index, pick_node(topo, selector))
        order = ordered_balls(view)
        depths = [view.depth_of(ball) for ball in order]
        assert depths == sorted(depths, reverse=True)


class TestRandomPathProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=16),
        settled=st.sets(st.integers(min_value=0, max_value=15), max_size=15),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_path_valid_and_avoids_full_subtrees(self, n, settled, seed):
        topo = Topology(n)
        view = LocalTreeView(topo, ["mover"])
        occupied = [rank for rank in settled if rank < n]
        if len(occupied) >= n:
            occupied = occupied[: n - 1]  # keep one leaf free for the mover
        for rank in occupied:
            view.insert(f"s{rank}", nd.leaf_node(rank))
        path = random_capacity_path(view, topo.root, random.Random(seed))
        assert path[0] == topo.root
        assert nd.is_leaf(path[-1])
        for parent, child in zip(path, path[1:]):
            assert topo.parent(child) == parent
        # The chosen leaf must be free (capacity-weighted choice never
        # enters a full subtree when a free alternative exists).
        assert nd.leaf_rank(path[-1]) not in occupied
