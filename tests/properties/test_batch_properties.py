"""Property tests for the batch engine: determinism under parallelism.

The engine's contract is that the execution backend is invisible in the
results: the same :class:`ScenarioMatrix` run on the serial and the
multiprocessing executor yields identical :class:`BatchResult` cells,
trial for trial — and the engine's legacy seed schedule reproduces the
historical per-experiment serial loops byte for byte.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary.random_crash import RandomCrashAdversary
from repro.analysis.tables import Table
from repro.experiments.common import round_stats
from repro.ids import sparse_ids
from repro.sim.batch import (
    AdversarySpec,
    ScenarioMatrix,
    run_batch,
)
from repro.sim.runner import run_renaming

#: >= 3 algorithms x >= 2 adversaries, per the determinism contract.
MATRIX_ALGORITHMS = ("balls-into-leaves", "early-terminating", "rank-descent")
MATRIX_ADVERSARIES = (
    AdversarySpec.of("random", rate=0.2),
    AdversarySpec.of("sandwich"),
)


class TestSerialEqualsMultiprocessing:
    def test_identical_cells_across_executors(self):
        matrix = ScenarioMatrix.build(
            MATRIX_ALGORITHMS,
            [8, 16],
            MATRIX_ADVERSARIES,
            trials=3,
            base_seed=11,
        )
        serial = run_batch(matrix, executor="serial")
        parallel = run_batch(matrix, executor="process", workers=4)
        assert serial.trials == parallel.trials  # every scalar, every name
        assert list(serial.cells()) == list(parallel.cells())
        for key, cell in serial.cells().items():
            assert parallel.cells()[key] == cell

    @pytest.mark.tier2
    def test_identical_cells_across_executors_large(self):
        matrix = ScenarioMatrix.build(
            MATRIX_ALGORITHMS + ("leftmost", "flood"),
            [8, 16, 32],
            MATRIX_ADVERSARIES + (AdversarySpec.of("none"), AdversarySpec.of("targeted")),
            trials=10,
            base_seed=2,
            seed_mode="derived",
        )
        serial = run_batch(matrix, executor="serial")
        parallel = run_batch(matrix, executor="process", workers=4)
        assert serial.trials == parallel.trials

    def test_derived_mode_is_backend_invariant_too(self):
        matrix = ScenarioMatrix.build(
            MATRIX_ALGORITHMS,
            [8],
            MATRIX_ADVERSARIES,
            trials=2,
            base_seed=5,
            seed_mode="derived",
        )
        assert run_batch(matrix).trials == run_batch(matrix, workers=2).trials


class TestByteIdenticalWithLegacySerialPath:
    """The t2_scaling acceptance bar: engine tables == seed serial loop."""

    def _legacy_table(self, n: int, trials: int, base_seed: int) -> str:
        table = Table("rounds", ["n", "ff mean", "ff p95", "crash mean", "mean f"])
        ids = sparse_ids(n)
        ff, crash = [], []
        for trial in range(trials):
            seed = base_seed * 100_003 + trial
            ff.append(run_renaming("balls-into-leaves", ids, seed=seed))
        for trial in range(trials):
            seed = (base_seed + 1) * 100_003 + trial
            crash.append(
                run_renaming(
                    "balls-into-leaves",
                    ids,
                    seed=seed,
                    adversary=RandomCrashAdversary(0.05, seed=seed),
                )
            )
        ff_stats, crash_stats = round_stats(ff), round_stats(crash)
        table.add_row(
            n,
            ff_stats.mean,
            ff_stats.p95,
            crash_stats.mean,
            sum(r.failures for r in crash) / len(crash),
        )
        return table.render()

    def _engine_table(self, n: int, trials: int, base_seed: int, **batch_kwargs) -> str:
        table = Table("rounds", ["n", "ff mean", "ff p95", "crash mean", "mean f"])
        crash_spec = AdversarySpec.of("random", rate=0.05)
        ff = run_batch(
            ScenarioMatrix.build(
                ["balls-into-leaves"], [n], ["none"], trials=trials, base_seed=base_seed
            ),
            **batch_kwargs,
        ).cell("balls-into-leaves", n)
        crash = run_batch(
            ScenarioMatrix.build(
                ["balls-into-leaves"], [n], [crash_spec], trials=trials, base_seed=base_seed + 1
            ),
            **batch_kwargs,
        ).cell("balls-into-leaves", n, crash_spec)
        ff_stats, crash_stats = round_stats(ff), round_stats(crash)
        table.add_row(
            n,
            ff_stats.mean,
            ff_stats.p95,
            crash_stats.mean,
            sum(r.failures for r in crash) / len(crash),
        )
        return table.render()

    def test_small_sweep_byte_identical(self):
        legacy = self._legacy_table(16, 10, base_seed=3)
        assert self._engine_table(16, 10, base_seed=3) == legacy
        assert self._engine_table(16, 10, base_seed=3, executor="process", workers=2) == legacy

    @pytest.mark.tier2
    def test_paper_scale_sweep_byte_identical(self):
        """64 processes, 100 seeds: serial path == engine, any backend."""
        legacy = self._legacy_table(64, 100, base_seed=0)
        assert self._engine_table(64, 100, base_seed=0) == legacy
        assert self._engine_table(64, 100, base_seed=0, executor="process", workers=4) == legacy


class TestMatrixProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        base_seed=st.integers(min_value=0, max_value=10_000),
        trials=st.integers(min_value=1, max_value=5),
        seed_mode=st.sampled_from(("legacy", "derived")),
    )
    def test_expansion_is_deterministic_and_complete(self, base_seed, trials, seed_mode):
        matrix = ScenarioMatrix.build(
            MATRIX_ALGORITHMS,
            [4, 8],
            MATRIX_ADVERSARIES,
            trials=trials,
            base_seed=base_seed,
            seed_mode=seed_mode,
        )
        specs = matrix.expand()
        assert specs == matrix.expand()  # stable
        assert len(specs) == len(MATRIX_ALGORITHMS) * 2 * len(MATRIX_ADVERSARIES) * trials
        # Every cell gets exactly `trials` distinct seeds; the legacy
        # schedule additionally keeps them in ascending trial order.
        by_cell = {}
        for spec in specs:
            by_cell.setdefault(spec.cell, []).append(spec.seed)
        assert all(len(set(seeds)) == trials for seeds in by_cell.values())
        if seed_mode == "legacy":
            assert all(seeds == sorted(seeds) for seeds in by_cell.values())

    @settings(max_examples=40, deadline=None)
    @given(
        base_seed=st.integers(min_value=0, max_value=10_000),
        trial=st.integers(min_value=0, max_value=50),
    )
    def test_derived_seeds_are_cell_independent(self, base_seed, trial):
        matrix = ScenarioMatrix.build(
            MATRIX_ALGORITHMS,
            [4, 8],
            MATRIX_ADVERSARIES,
            trials=1,
            base_seed=base_seed,
            seed_mode="derived",
        )
        seeds = {
            matrix.trial_seed(algorithm, n, adversary, trial)
            for algorithm in matrix.algorithms
            for n in matrix.sizes
            for adversary in matrix.adversaries
        }
        assert len(seeds) == len(MATRIX_ALGORITHMS) * 2 * len(MATRIX_ADVERSARIES)
