"""Property-based tests for the remaining substrates.

Covers the load-balancing schemes, the flooding baseline, approximate
agreement, and the halt-on-name extension under hypothesis-generated
inputs and crash schedules.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.baselines.approximate_agreement import (
    build_approximate_agreement,
    decision_diameter,
)
from repro.baselines.flood_consensus import build_flood_renaming
from repro.ids import sparse_ids
from repro.loadbalance.parallel_retry import parallel_retry
from repro.loadbalance.single_choice import single_choice
from repro.loadbalance.two_choice import two_choice
from repro.sim.runner import run_renaming
from repro.sim.simulator import Simulation


def schedule_strategy(n, max_round=8):
    crash = st.tuples(
        st.integers(min_value=1, max_value=max_round),
        st.integers(min_value=0, max_value=n - 1),
        st.lists(st.integers(min_value=0, max_value=n - 1), max_size=n),
    )
    return st.lists(crash, max_size=n - 1)


def to_adversary(ids, raw):
    entries = []
    seen = set()
    for round_no, victim_index, receivers in raw:
        victim = ids[victim_index]
        if victim in seen:
            continue
        seen.add(victim)
        entries.append(
            ScheduledCrash(
                round_no,
                victim,
                [ids[i] for i in sorted(set(receivers)) if ids[i] != victim],
            )
        )
    return ScheduledAdversary(entries)


class TestLoadBalanceProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        n_balls=st.integers(min_value=0, max_value=200),
        n_bins=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_single_choice_conserves_balls(self, n_balls, n_bins, seed):
        loads = single_choice(n_balls, n_bins, random.Random(seed))
        assert loads.n_balls == n_balls
        assert loads.n_bins == n_bins
        assert all(load >= 0 for load in loads.loads)

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=200),
        choices=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_two_choice_conserves_balls(self, n, choices, seed):
        loads = two_choice(n, n, random.Random(seed), choices=choices)
        assert loads.n_balls == n

    @settings(max_examples=40, deadline=None)
    @given(
        n_balls=st.integers(min_value=0, max_value=128),
        extra_bins=st.integers(min_value=0, max_value=64),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_parallel_retry_is_always_one_to_one(self, n_balls, extra_bins, seed):
        outcome = parallel_retry(n_balls, n_balls + extra_bins, random.Random(seed))
        assert outcome.one_to_one
        assert len(outcome.assignment) == n_balls
        assert sorted(outcome.assignment) == list(range(n_balls))


class TestFloodProperties:
    @settings(max_examples=30, deadline=None)
    @given(raw=st.data())
    def test_flood_knowledge_only_grows(self, raw):
        n = raw.draw(st.integers(min_value=1, max_value=8))
        ids = sparse_ids(n)
        adversary = to_adversary(ids, raw.draw(schedule_strategy(n)))
        processes = build_flood_renaming(ids, crash_budget=n - 1)
        simulation = Simulation(processes, adversary=adversary, max_rounds=n + 4)
        previous = {proc.pid: set(proc.known) for proc in processes}
        while simulation.step():
            for proc in processes:
                assert previous[proc.pid] <= set(proc.known)
                previous[proc.pid] = set(proc.known)


class TestApproximateAgreementProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        raw=st.data(),
    )
    def test_decisions_stay_in_initial_interval(self, values, raw):
        n = len(values)
        ids = sparse_ids(n)
        adversary = to_adversary(ids, raw.draw(schedule_strategy(n)))
        processes = build_approximate_agreement(ids, values, rounds=6)
        result = Simulation(processes, adversary=adversary, max_rounds=10).run()
        low, high = min(values), max(values)
        for pid, decision in result.decisions.items():
            if decision is not None:
                assert low - 1e-9 <= decision <= high + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            min_size=2,
            max_size=10,
        )
    )
    def test_failure_free_exact_agreement(self, values):
        ids = sparse_ids(len(values))
        processes = build_approximate_agreement(ids, values, rounds=2)
        result = Simulation(processes, max_rounds=4).run()
        assert decision_diameter(result.decisions) == 0.0


class TestHaltOnNameProperties:
    """Hypothesis sweeps of the announced-termination lifecycle.

    This generator is the one that originally found the mid-path-crash
    ghost deadlock (a silent ball retained at a merely *simulated* leaf
    position reserved a survivor's free leaf forever).  With the
    lifecycle fix, every schedule must terminate with unique names and
    pass the tightened capacity invariant.
    """

    @staticmethod
    def _check_spec(raw, seed):
        n = 9
        ids = sparse_ids(n)
        adversary = to_adversary(ids, raw.draw(schedule_strategy(n)))
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=seed,
            adversary=adversary,
            halt_on_name=True,
            check_invariants=True,
        )
        names = list(run.names.values())
        assert len(names) == len(set(names))
        assert all(0 <= name < n for name in names)

    @settings(max_examples=60, deadline=None)
    @given(raw=st.data(), seed=st.integers(min_value=0, max_value=30))
    def test_spec_under_arbitrary_crashes(self, raw, seed):
        self._check_spec(raw, seed)

    @pytest.mark.tier2
    @settings(max_examples=500, deadline=None)
    @given(raw=st.data(), seed=st.integers(min_value=0, max_value=30))
    def test_spec_under_arbitrary_crashes_deep(self, raw, seed):
        """Nightly: the 500-example sweep of the acceptance criterion."""
        self._check_spec(raw, seed)
