"""Property-based tests: the renaming spec holds under arbitrary crashes.

Hypothesis drives the adversary: arbitrary victims, rounds, and receiver
subsets.  Whatever it throws at the algorithms, correct processes must
terminate with distinct valid names (Theorem 1 + deterministic
termination), in both view modes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming


def schedules(max_n: int, max_round: int = 9):
    """Strategy: a crash schedule over process indices 0..max_n-1."""
    crash = st.tuples(
        st.integers(min_value=1, max_value=max_round),  # round
        st.integers(min_value=0, max_value=max_n - 1),  # victim index
        st.lists(  # receiver indices
            st.integers(min_value=0, max_value=max_n - 1), max_size=max_n
        ),
    )
    return st.lists(crash, max_size=max_n - 1)


def build_adversary(ids, raw_schedule):
    entries = []
    seen_victims = set()
    for round_no, victim_index, receiver_indices in raw_schedule:
        victim = ids[victim_index]
        if victim in seen_victims:
            continue
        seen_victims.add(victim)
        receivers = [ids[i] for i in sorted(set(receiver_indices)) if ids[i] != victim]
        entries.append(ScheduledCrash(round_no, victim, receivers))
    return ScheduledAdversary(entries)


class TestSpecUnderArbitraryCrashes:
    @settings(max_examples=60, deadline=None)
    @given(raw=schedules(max_n=9), seed=st.integers(min_value=0, max_value=50))
    def test_balls_into_leaves(self, raw, seed):
        ids = sparse_ids(9)
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=seed,
            adversary=build_adversary(ids, raw),
            check_invariants=True,
        )
        names = list(run.names.values())
        assert len(names) == len(set(names))
        assert all(0 <= name < 9 for name in names)

    @settings(max_examples=40, deadline=None)
    @given(raw=schedules(max_n=8), seed=st.integers(min_value=0, max_value=20))
    def test_early_terminating(self, raw, seed):
        ids = sparse_ids(8)
        run = run_renaming(
            "early-terminating",
            ids,
            seed=seed,
            adversary=build_adversary(ids, raw),
            check_invariants=True,
        )
        assert len(set(run.names.values())) == len(run.names)

    @settings(max_examples=40, deadline=None)
    @given(raw=schedules(max_n=8), seed=st.integers(min_value=0, max_value=20))
    def test_rank_descent(self, raw, seed):
        ids = sparse_ids(8)
        run = run_renaming(
            "rank-descent",
            ids,
            seed=seed,
            adversary=build_adversary(ids, raw),
            check_invariants=True,
        )
        assert len(set(run.names.values())) == len(run.names)

    @settings(max_examples=30, deadline=None)
    @given(raw=schedules(max_n=7, max_round=7))
    def test_flood(self, raw):
        ids = sparse_ids(7)
        run = run_renaming("flood", ids, adversary=build_adversary(ids, raw))
        assert len(set(run.names.values())) == len(run.names)

    @settings(max_examples=25, deadline=None)
    @given(
        raw=schedules(max_n=7),
        seed=st.integers(min_value=0, max_value=10),
        n=st.integers(min_value=1, max_value=7),
    )
    def test_view_modes_agree_under_arbitrary_crashes(self, raw, seed, n):
        ids = sparse_ids(n)
        raw = [(r, v % n, [i % n for i in rec]) for r, v, rec in raw]
        outcomes = {}
        for mode in ("faithful", "shared"):
            run = run_renaming(
                "balls-into-leaves",
                ids,
                seed=seed,
                adversary=build_adversary(ids, raw),
                view_mode=mode,
            )
            outcomes[mode] = (run.rounds, tuple(sorted(run.names.items())))
        assert outcomes["faithful"] == outcomes["shared"]
