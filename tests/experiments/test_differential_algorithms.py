"""Differential test across the whole algorithm table.

Every renaming algorithm registered in
:data:`repro.sim.runner.WORKLOADS` must satisfy the tight renaming
specification on every failure-free trial of a batch sweep: all ``n``
processes decide, names are exactly a permutation of ``0..n-1``.  A
regression anywhere in an algorithm, the simulator, or the checker shows
up here as a cross-table diff.  Workloads flagged ``renaming=False``
(approximate agreement decides reals, not names) are covered by
``tests/sim/test_workloads.py`` instead.
"""

from __future__ import annotations

import pytest

from repro.sim.batch import ScenarioMatrix, run_batch
from repro.sim.runner import WORKLOADS

RENAMING_ALGORITHMS = sorted(
    name for name, workload in WORKLOADS.items() if workload.renaming
)


def _assert_tight_one_to_one(batch, n: int) -> None:
    for result in batch.trials:
        # check=True already ran check_renaming inside the trial; assert
        # the tight one-to-one property independently of the checker.
        assert result.failures == 0
        names = [name for _, name in result.names]
        assert len(names) == n, f"{result.spec}: {len(names)} of {n} processes named"
        assert sorted(names) == list(range(n)), f"{result.spec}: names {sorted(names)}"


class TestEveryAlgorithmSatisfiesTheSpec:
    def test_quick_differential_sweep(self):
        """Tier-1 guard: every algorithm, 25 failure-free trials at n=16."""
        n = 16
        batch = run_batch(
            ScenarioMatrix.build(
                RENAMING_ALGORITHMS, [n], ["none"], trials=25, base_seed=1
            )
        )
        assert len(batch) == len(RENAMING_ALGORITHMS) * 25
        _assert_tight_one_to_one(batch, n)

    @pytest.mark.tier2
    def test_200_trial_differential_sweep(self):
        """Nightly: every algorithm, 200 failure-free trials, two sizes."""
        for n in (16, 32):
            batch = run_batch(
                ScenarioMatrix.build(
                    RENAMING_ALGORITHMS,
                    [n],
                    ["none"],
                    trials=200,
                    base_seed=7,
                    seed_mode="derived",
                )
            )
            assert len(batch) == len(RENAMING_ALGORITHMS) * 200
            _assert_tight_one_to_one(batch, n)
