"""Unit tests for the experiment modules' helper machinery."""

from __future__ import annotations

import pytest

from repro.adversary.base import AdversaryContext
from repro.experiments.approx_agreement import ExtremeHolderAdversary
from repro.experiments.common import (
    failure_stats,
    no_adversary,
    round_stats,
    rounds_over_trials,
    scaled,
)
from repro.experiments.fig_path_view import build_figure4_view, gateway_capacity_total
from repro.experiments.separation import _stress_adversary
from repro.experiments.t4_early_termination import _first_round_crashes
from repro.errors import ExperimentError
from repro.ids import sparse_ids


class TestCommonHelpers:
    def test_scaled_picks_by_scale(self):
        assert scaled("smoke", 1, 2) == 1
        assert scaled("paper", 1, 2) == 2
        with pytest.raises(ExperimentError):
            scaled("cosmic", 1, 2)

    def test_no_adversary(self):
        assert no_adversary(7) is None

    def test_rounds_over_trials_runs_distinct_seeds(self):
        runs = rounds_over_trials("balls-into-leaves", 8, trials=3, base_seed=1)
        assert len(runs) == 3
        assert len({run.seed for run in runs}) == 3

    def test_round_and_failure_stats(self):
        runs = rounds_over_trials("balls-into-leaves", 8, trials=3, base_seed=1)
        assert round_stats(runs).count == 3
        assert failure_stats(runs).maximum == 0.0


class TestT4Adversary:
    def test_f_zero_means_no_adversary(self):
        assert _first_round_crashes(sparse_ids(16), 0, 1) is None

    def test_exactly_f_victims_scheduled(self):
        ids = sparse_ids(64)
        for f in (1, 4, 16):
            adversary = _first_round_crashes(ids, f, 1)
            scheduled = adversary._by_round[1]
            assert len(scheduled) == f
            victims = {entry.victim for entry in scheduled}
            assert len(victims) == f

    def test_victims_spread_over_label_space(self):
        ids = sparse_ids(64)
        adversary = _first_round_crashes(ids, 4, 1)
        victims = sorted(entry.victim for entry in adversary._by_round[1])
        positions = [ids.index(victim) for victim in victims]
        assert positions == [0, 16, 32, 48]

    def test_receivers_form_half_camps(self):
        ids = sparse_ids(16)
        adversary = _first_round_crashes(ids, 2, 1)
        for entry in adversary._by_round[1]:
            receivers = set(entry.receivers)
            assert entry.victim not in receivers
            assert 7 <= len(receivers) <= 8  # one half of 16, minus self


class TestSeparationAdversary:
    def test_strikes_hello_and_position_rounds(self):
        adversary = _stress_adversary(1)
        assert 1 in adversary._rounds
        assert 3 in adversary._rounds
        assert 2 not in adversary._rounds


class TestFigure4Helpers:
    def test_gateway_identity_on_other_paths(self):
        view = build_figure4_view()
        # The identity "gateway capacity == balls on the path" holds for
        # the illustrated (rightmost) path by construction.
        assert gateway_capacity_total(view, 15) == 5

    def test_total_population_is_sixteen(self):
        view = build_figure4_view()
        assert len(view) == 16  # 5 stuck + 11 settled


class TestExtremeHolderAdversary:
    def test_targets_the_max_value_sender(self):
        adversary = ExtremeHolderAdversary(max_crashes=1)
        ctx = AdversaryContext(
            round_no=1,
            running=(1, 2, 3),
            alive=(1, 2, 3),
            outbox={1: ("aa-value", 5.0), 2: ("aa-value", 9.0), 3: ("aa-value", 1.0)},
            crashed_so_far=frozenset(),
            budget_remaining=2,
            processes={},
        )
        plan = adversary.plan(ctx)
        assert list(plan) == [2]

    def test_ignores_non_value_traffic(self):
        adversary = ExtremeHolderAdversary(max_crashes=1)
        ctx = AdversaryContext(
            round_no=1,
            running=(1, 2),
            alive=(1, 2),
            outbox={1: ("hello",), 2: ("hello",)},
            crashed_so_far=frozenset(),
            budget_remaining=1,
            processes={},
        )
        assert adversary.plan(ctx) == {}
