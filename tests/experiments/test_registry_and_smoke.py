"""Every registered experiment must run at smoke scale and claim-check."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError, UnknownExperimentError
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.registry import all_experiments, get_experiment, run_experiment

EXPECTED_IDS = [
    "EXP-F12",
    "EXP-F4",
    "EXP-T2",
    "EXP-SEP",
    "EXP-L6",
    "EXP-L10",
    "EXP-T3",
    "EXP-T4",
    "EXP-ADV",
    "EXP-LB",
    "EXP-DET",
    "EXP-ABL",
    "EXP-MSG",
    "EXP-AA",
    "EXP-NP2",
    "EXP-HUNT",
    "EXP-TAIL",
    "EXP-FAULT",
]


class TestRegistry:
    def test_all_expected_ids_registered(self):
        assert [entry.experiment_id for entry in all_experiments()] == EXPECTED_IDS

    def test_lookup(self):
        entry = get_experiment("EXP-T2")
        assert "Theorem 2" in entry.title

    def test_unknown_id(self):
        with pytest.raises(UnknownExperimentError):
            get_experiment("EXP-NOPE")

    def test_scale_validation(self):
        with pytest.raises(ExperimentError):
            check_scale("galactic")


@pytest.mark.parametrize("experiment_id", EXPECTED_IDS)
def test_smoke_run_produces_report(experiment_id):
    result = run_experiment(experiment_id, scale="smoke", seed=1)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    report = result.render()
    assert experiment_id in report
    assert "reproduce with" in report
    assert result.tables or result.plots


class TestClaimShapes:
    """Cheap, deterministic checks that the headline shapes hold."""

    def test_t3_constant(self):
        result = run_experiment("EXP-T3", scale="smoke", seed=2)
        note = next(n for n in result.notes if "distinct" in n)
        assert "[3.0]" in note

    def test_det_is_linear(self):
        result = run_experiment("EXP-DET", scale="smoke", seed=2)
        note = next(n for n in result.notes if "best fit" in n)
        assert "linear" in note

    def test_f4_identity_holds(self):
        result = run_experiment("EXP-F4", scale="smoke", seed=2)
        note = next(n for n in result.notes if "gateway" in n)
        assert "balls on the path: 5; total gateway capacity: 5" in note

    def test_lb_duplicates_appear_under_loss(self):
        result = run_experiment("EXP-LB", scale="smoke", seed=2)
        faulty = result.tables[-1]
        lossy_rows = [row for row in faulty.rows if row[1] != "0.000"]
        assert any(row[2].split("/")[0] != "0" for row in lossy_rows)
