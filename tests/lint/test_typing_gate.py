"""The static-typing leg of the lint gate.

mypy itself is an optional extra (``pip install .[lint]``) and runs in
the CI lint job; this module keeps two guarantees testable everywhere:

* the strict-typed packages stay fully annotated (checked by AST, so it
  holds even where mypy is not installed), and
* when mypy *is* available, the configured strict run passes.
"""

import ast
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: Packages mypy.ini holds to disallow_untyped_defs.
STRICT_TREES = [
    REPO / "src" / "repro" / "core",
    REPO / "src" / "repro" / "lint",
    REPO / "src" / "repro" / "config.py",
]


def _untyped_defs(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        missing = [
            arg.arg
            for arg in args
            if arg.annotation is None and arg.arg not in ("self", "cls")
        ]
        if node.args.vararg and node.args.vararg.annotation is None:
            missing.append("*" + node.args.vararg.arg)
        if node.args.kwarg and node.args.kwarg.annotation is None:
            missing.append("**" + node.args.kwarg.arg)
        if missing or node.returns is None:
            yield f"{path}:{node.lineno} {node.name} ({', '.join(missing) or 'return'})"


def test_strict_packages_are_fully_annotated():
    offenders = []
    for root in STRICT_TREES:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            offenders.extend(_untyped_defs(path))
    assert not offenders, "untyped defs in strict-typed packages:\n" + "\n".join(
        offenders
    )


def test_mypy_strict_run_passes():
    if shutil.which("mypy") is None:
        pytest.skip("mypy not installed (optional .[lint] extra)")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO / "mypy.ini"),
            str(REPO / "src" / "repro"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stdout + result.stderr
