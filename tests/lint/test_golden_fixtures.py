"""Golden-violation corpus: every lint rule fires at its marked line.

Each fixture under ``fixtures/`` carries ``# expect: RULE`` markers on the
lines the linter must flag (comma-separated when one line yields several
findings).  The markers are stripped before linting so they cannot perturb
the suppression parser — which is exactly what the S001 fixture needs: its
waiver must be *unjustified* once the marker is removed.
"""

import re
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_source

FIXTURES = Path(__file__).resolve().parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)\s*$")
_STRIP_RE = re.compile(r"\s*#\s*expect:.*$")


def _load(path):
    """Return (lintable source, expected (line, rule) multiset)."""
    expected = []
    stripped = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for rule in match.group("rules").split(","):
                expected.append((lineno, rule.strip()))
        stripped.append(_STRIP_RE.sub("", line))
    return "\n".join(stripped) + "\n", sorted(expected)


def _fixture_paths():
    paths = sorted(FIXTURES.glob("*.py"))
    assert paths, "fixture corpus is missing"
    return paths


@pytest.mark.parametrize("path", _fixture_paths(), ids=lambda p: p.stem)
def test_fixture_findings_match_markers(path):
    source, expected = _load(path)
    violations = lint_source(source, path=str(path))
    got = sorted((v.line, v.rule) for v in violations)
    assert got == expected, (
        f"{path.name}: linter reported {got}, fixture markers expect {expected}"
    )


def test_corpus_exercises_every_registered_rule():
    fired = set()
    for path in _fixture_paths():
        _, expected = _load(path)
        fired.update(rule for _, rule in expected)
    registered = {rule.rule_id for rule in all_rules()}
    missing = registered - fired
    assert not missing, f"no fixture exercises: {sorted(missing)}"
    # The suppression meta-rules are not in the registry but must still
    # have golden coverage.
    assert {"S001", "S002"} <= fired


def test_suppressed_fixture_is_clean():
    path = FIXTURES / "suppressed_clean.py"
    assert lint_source(path.read_text(), path=str(path)) == []
