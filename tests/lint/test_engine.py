"""Engine mechanics: suppressions, alias resolution, file discovery."""

from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.engine import LintConfigError, iter_python_files


def _rules(violations):
    return [v.rule for v in violations]


def test_same_line_suppression_waives_the_finding():
    src = "import time\nt = time.time()  # repro: lint-ok[D102] telemetry only\n"
    assert lint_source(src, path="x.py") == []


def test_comment_line_above_covers_the_next_line():
    src = (
        "import time\n"
        "# repro: lint-ok[D102] telemetry only\n"
        "t = time.time()\n"
    )
    assert lint_source(src, path="x.py") == []


def test_comment_line_does_not_cover_two_lines_down():
    src = (
        "import time\n"
        "# repro: lint-ok[D102] telemetry only\n"
        "pass\n"
        "t = time.time()\n"
    )
    # The waiver covers lines 2-3 only: the D102 on line 4 survives and
    # the waiver itself becomes an unused S002.
    assert sorted(_rules(lint_source(src, path="x.py"))) == ["D102", "S002"]


def test_multi_rule_waiver_covers_both_findings():
    src = (
        "import time, random\n"
        "t = (time.time(), random.random())"
        "  # repro: lint-ok[D101, D102] fixture of both hazards\n"
    )
    assert lint_source(src, path="x.py") == []


def test_unjustified_waiver_reports_s001_but_still_waives():
    src = "x = id(object())  # repro: lint-ok[D104]\n"
    violations = lint_source(src, path="x.py")
    assert _rules(violations) == ["S001"]


def test_unknown_rule_waiver_reports_s002():
    src = "# repro: lint-ok[Z999] no such rule\nx = 1\n"
    assert _rules(lint_source(src, path="x.py")) == ["S002"]


def test_import_alias_resolution_reaches_numpy_random():
    src = "import numpy as np\nx = np.random.standard_normal(4)\n"
    assert _rules(lint_source(src, path="x.py")) == ["D101"]


def test_from_import_resolution_reaches_datetime_now():
    src = "from datetime import datetime\nx = datetime.now()\n"
    assert _rules(lint_source(src, path="x.py")) == ["D102"]


def test_syntax_error_becomes_e999():
    violations = lint_source("def broken(:\n", path="x.py")
    assert _rules(violations) == ["E999"]


def test_violation_render_is_path_line_rule():
    (violation,) = lint_source("x = id(x)\n", path="pkg/mod.py")
    assert violation.render().startswith("pkg/mod.py:1: D104 ")


def test_iter_python_files_skips_pycache_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-311.pyc.py").write_text("x = 1\n")
    names = [p.name for p in iter_python_files([str(tmp_path)])]
    assert names == ["a.py", "b.py"]


def test_iter_python_files_missing_path_raises(tmp_path):
    with pytest.raises(LintConfigError):
        list(iter_python_files([str(tmp_path / "nope")]))


def test_lint_paths_on_a_directory(tmp_path):
    (tmp_path / "dirty.py").write_text("import time\nx = time.time()\n")
    (tmp_path / "clean.py").write_text("x = 1\n")
    violations = lint_paths([str(tmp_path)])
    assert [(Path(v.path).name, v.rule) for v in violations] == [("dirty.py", "D102")]
