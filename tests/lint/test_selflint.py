"""The repo must lint clean, and the CLI verb must honor its exit codes."""

import json
from pathlib import Path

from repro.cli import main
from repro.lint import lint_paths

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


class TestSelfLint:
    def test_src_tree_has_no_violations(self):
        violations = lint_paths([str(SRC)])
        rendered = "\n".join(v.render() for v in violations)
        assert violations == [], f"repo does not self-lint:\n{rendered}"

    def test_cli_lint_src_exits_clean(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out


class TestLintCli:
    def test_violations_exit_1_with_locations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:2: D102" in out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("x = id(x)\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert [v["rule"] for v in payload["violations"]] == ["D104"]

    def test_select_restricts_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nx = (time.time(), id(x))\n")
        assert main(["lint", str(tmp_path), "--select", "D104"]) == 1
        out = capsys.readouterr().out
        assert "D104" in out
        assert "D102" not in out

    def test_select_unknown_rule_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--select", "D999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_rules_catalogue_lists_every_family(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D101", "K201", "T301", "S001", "S002"):
            assert rule_id in out

    def test_out_file(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("x = hash(object())\n")
        report = tmp_path / "report.txt"
        assert main(["lint", str(tmp_path), "--out", str(report)]) == 1
        capsys.readouterr()
        assert "D104" in report.read_text()
