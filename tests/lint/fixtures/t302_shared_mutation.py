"""Golden violation: fanout worker mutating shared Python state (T302)."""


def _fanout(work, count):
    work(slice(0, count))


def collect(results, count):
    def work(cols):
        results.append(cols.start)  # expect: T302

    _fanout(work, count)


def tally(count):
    total = 0

    def work(cols):
        nonlocal total  # expect: T302
        total += cols.stop - cols.start

    _fanout(work, count)
    return total
