"""Golden violation: env reads outside the config seam (D105).

A re-creation of the real pre-centralization hazard: before
``repro/config.py``, this exact knob-read pattern was scattered across
``sim/batch.py``, ``core/mt19937.py``, and ``core/sha256.py``.
"""

import os

DEFAULT_MAX_STREAMS = 1 << 17


def _max_streams():
    raw = os.environ.get("REPRO_VEC_MAX_STREAMS")  # expect: D105
    return max(1, int(raw)) if raw else DEFAULT_MAX_STREAMS


def _lanes_mode():
    return os.getenv("REPRO_SHA256_LANES", "auto")  # expect: D105
