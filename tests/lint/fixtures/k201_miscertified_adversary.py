"""Golden violation: a @certified plan off the columnar surface (K201).

``ctx.processes`` exposes reference-engine process objects the columnar
crash engine never materializes; a certified plan reading it would
produce different crash plans on the two kernels.
"""


class Adversary:
    pass


def certified(cls):
    return cls


@certified
class PeekingAdversary(Adversary):
    def plan(self, ctx):
        if ctx.round_no < 2 or not ctx.budget_remaining:
            return {}
        victim = min(ctx.processes, key=repr)  # expect: K201
        return {victim: frozenset(ctx.alive)}
