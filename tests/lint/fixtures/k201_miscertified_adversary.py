"""Golden violation: a @certified plan off the columnar surface (K201).

``ctx.processes`` exposes reference-engine process objects the columnar
crash engine never materializes; a certified plan reading it would
produce different crash plans on the two kernels.
"""


class Adversary:
    pass


def certified(cls):
    return cls


@certified
class PeekingAdversary(Adversary):
    def plan(self, ctx):
        if ctx.round_no < 2 or not ctx.budget_remaining:
            return {}
        victim = min(ctx.processes, key=repr)  # expect: K201
        return {victim: frozenset(ctx.alive)}


@certified
class PeekingOmissionAdversary(Adversary):
    """A fault plan is held to the same surface as a crash plan."""

    def plan(self, ctx):
        return {}

    def plan_faults(self, ctx):
        # The FaultPlan budget fields ARE on the materialized surface:
        # reading them must stay clean.
        if ctx.omission_budget_remaining == 0 or ctx.delay_bound:
            return None
        if ctx.corrupted_so_far:
            return None
        inboxes = ctx.processes  # expect: K201
        sender = min(inboxes, key=repr)
        return {"omissions": {sender: frozenset(ctx.alive)}}
