"""Golden violation: suppressions that are themselves defective.

An unjustified waiver (S001) still waives its finding — but must say
why; a waiver matching no finding is stale documentation (S002).
"""


def cache_key(view):
    return id(view)  # repro: lint-ok[D104]  # expect: S001


# repro: lint-ok[D103] nothing below iterates a set  # expect: S002
def clean():
    return 1
