"""Golden violation: wall-clock reads in a result path (D102)."""

import time
from datetime import datetime


def stamp_row(row):
    row["at"] = time.time()  # expect: D102
    row["day"] = datetime.now().isoformat()  # expect: D102
    return row
