"""Golden violation: process-global RNG state (D101).

Any of these would make results depend on call order across the whole
process — the hazard the serial==mp differential suites pin dynamically.
"""

import random

import numpy as np


def jitter(values):
    random.shuffle(values)  # expect: D101
    return values[0] + random.random()  # expect: D101


def noisy_column(count):
    return np.random.random(count)  # expect: D101
