"""Golden violation: id()/hash() identity values (D104)."""


def fingerprint(view):
    return id(view)  # expect: D104


def bucket(label):
    return hash(label) % 64  # expect: D104
