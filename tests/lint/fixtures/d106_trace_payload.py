"""Golden violation: unstable values recorded into event payloads (D106)."""

import time


def record_round(trace, engine, round_no, timers):
    # Wall-clock reads inside the payload (also D102 on their own merit).
    trace.record(round_no, "round", at=time.time())  # expect: D102,D106
    # Identity values vary per process (also D104 on their own merit).
    trace.record(round_no, "view", key=id(engine))  # expect: D104,D106
    # Set displays serialize in hash order.
    trace.record(round_no, "camp", pids={1, 2, 3})  # expect: D106
    trace.record(round_no, "camp", pids=set(engine.alive))  # expect: D106
    # Dict views serialize in insertion order.
    trace.record(round_no, "names", vals=timers.values())  # expect: D106
    # Positional payload arguments are policed too.
    trace.record(round_no, "tick", time.perf_counter())  # expect: D102,D106


def record_round_clean(trace, engine, round_no, elapsed):
    # Precomputed deltas and sorted collections are the sanctioned shape.
    trace.record(round_no, "round", seconds=elapsed)
    trace.record(round_no, "camp", pids=sorted(engine.alive))
