"""Waived hazards: justified suppressions, so the linter reports nothing."""

import time


def elapsed_since(started):
    # repro: lint-ok[D102] wall-clock telemetry only; never reaches a result row
    return time.perf_counter() - started


def cache_key(view):
    return id(view)  # repro: lint-ok[D104] within-process cache key; order never reaches output
