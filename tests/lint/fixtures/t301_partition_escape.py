"""Golden violation: fanout worker writing outside its partition (T301)."""

import numpy as np


def _fanout(work, count):
    work(slice(0, count))


def seed_all(mt, keys, count):
    def work(cols):
        sub = mt[:, cols]
        sub[0] = keys[0, cols]
        mt[0] = 1  # expect: T301

    _fanout(work, count)


def twist_all(state, shared_out, count):
    def work(cols):
        np.add(state[:, cols], 1, out=shared_out)  # expect: T301

    _fanout(work, count)
