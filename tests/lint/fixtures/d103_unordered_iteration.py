"""Golden violation: unordered iteration feeding output or RNG (D103)."""


def dedup_in_hash_order(xs):
    return list(set(xs))  # expect: D103


def pick_victim(rng, by_pid):
    return rng.choice(by_pid.keys())  # expect: D103


def visit(xs):
    for x in {value for value in xs}:  # expect: D103
        yield x
