"""Golden violation: a spec field that never reaches the jsonl row (K203)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class TrialSpec:
    algorithm: str
    n: int
    flux_capacitance: float  # expect: K203


@dataclass(frozen=True)
class TrialResult:
    spec: TrialSpec
    rounds: int

    def to_row(self):
        return {
            "algorithm": self.spec.algorithm,
            "n": self.spec.n,
            "spec": "flattened",
            "rounds": self.rounds,
        }
