"""Golden violation: KernelUnsupported outside the vocabulary (K202)."""


class KernelUnsupported(Exception):
    def __init__(self, kernel, reason=None):
        super().__init__(kernel)


def certification_failure(adversary, *, supported=("crash",)):
    return None


def reject_exotic():
    raise KernelUnsupported("warp", "too exotic")  # expect: K202, K202


def reject_briefly():
    raise KernelUnsupported("columnar")  # expect: K202


def reject_with_made_up_family(adversary, failure):
    # "byzantine" is not in the crash/omission/delay/corruption
    # vocabulary, so the rejection would name a family no adversary
    # can declare.
    failure = certification_failure(
        adversary, supported=("crash", "byzantine")  # expect: K202
    )
    if failure is not None:
        raise KernelUnsupported("columnar", failure)


def reject_with_real_families(adversary):
    # The full declarable vocabulary is clean.
    return certification_failure(
        adversary, supported=("crash", "omission", "delay", "corruption")
    )
