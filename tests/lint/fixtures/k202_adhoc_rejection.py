"""Golden violation: KernelUnsupported outside the vocabulary (K202)."""


class KernelUnsupported(Exception):
    def __init__(self, kernel, reason=None):
        super().__init__(kernel)


def reject_exotic():
    raise KernelUnsupported("warp", "too exotic")  # expect: K202, K202


def reject_briefly():
    raise KernelUnsupported("columnar")  # expect: K202
