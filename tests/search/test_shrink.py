"""Tests for delta-debugging minimization and kernel-identical replay."""

from __future__ import annotations

import pytest

from repro.errors import KernelUnsupported
from repro.search.objectives import as_objective
from repro.search.schedule import CrashEvent, Schedule
from repro.search.shrink import replay, replay_identical, shrink, to_pytest
from repro.search.strategies import HuntConfig
from repro.sim.rng import derive_rng

CONFIG = HuntConfig(algorithm="balls-into-leaves", n=8, objective="rounds")


def padded_schedule(core: Schedule, seed: int = 0) -> Schedule:
    """The core event plus deterministic no-op-ish noise events."""
    rng = derive_rng(seed, "padding")
    events = list(core.events)
    for victim in (1, 3, 5):
        events.append(
            CrashEvent(rng.randint(8, 12), victim, (rng.randrange(8),))
        )
    return Schedule.of(core.n, events)


class TestShrink:
    def test_result_is_one_minimal_for_the_target(self):
        objective = as_objective(CONFIG.objective)
        seed = 11
        core = Schedule.of(8, [CrashEvent(2, 0, (1,))])
        start = padded_schedule(core)
        target = objective.score(replay(start, CONFIG, seed))
        shrunk = shrink(start, CONFIG, seed)
        assert shrunk.target == target
        assert shrunk.score >= target
        assert shrunk.schedule.crashes <= start.crashes
        # 1-minimality: dropping any remaining event loses the behavior
        # (unless the schedule is already a single event).
        if shrunk.schedule.crashes > 1:
            for index in range(shrunk.schedule.crashes):
                candidate = shrunk.schedule.without_event(index)
                score = objective.score(replay(candidate, CONFIG, seed))
                assert score < target

    def test_prefers_silent_crashes_and_early_rounds(self):
        seed = 3
        noisy = Schedule.of(
            8, [CrashEvent(6, 2, (0, 1, 3, 4, 5, 6, 7))]
        )
        shrunk = shrink(noisy, CONFIG, seed)
        event = shrunk.schedule.events[0]
        # Receivers only survive when they matter for the score; rounds
        # only stay late when earliness changes the outcome.
        rescored = replay(shrunk.schedule, CONFIG, seed)
        assert as_objective("rounds").score(rescored) == shrunk.score
        assert event.round_no <= 6

    def test_budget_caps_replays(self):
        start = padded_schedule(Schedule.of(8, [CrashEvent(2, 0, (1,))]))
        shrunk = shrink(start, CONFIG, 11, budget=5)
        assert shrunk.trials_used <= 5 + 2  # initial score + final rescore


class TestReplay:
    def test_identical_on_reference_and_columnar(self):
        schedule = Schedule.of(8, [CrashEvent(2, 0, (1, 2)), CrashEvent(4, 5)])
        reference, columnar = replay_identical(schedule, CONFIG, 7)
        assert reference.kernel == "reference"
        assert columnar.kernel == "columnar"
        assert reference.names == columnar.names

    def test_columnar_rejection_propagates(self):
        config = HuntConfig(algorithm="flood", n=8, objective="rounds")
        schedule = Schedule.of(8, [CrashEvent(1, 0)])
        with pytest.raises(KernelUnsupported):
            replay_identical(schedule, config, 0)


class TestToPytest:
    def test_renders_a_complete_regression(self):
        schedule = Schedule.of(8, [CrashEvent(2, 0, (1, 2))])
        result = replay(schedule, CONFIG, 5)
        text = to_pytest(schedule, CONFIG, 5, result)
        assert f"def test_hunt_regression_{schedule.digest}(" in text
        assert "ScheduledCrash(2, ids[0], receivers=[ids[1], ids[2]])" in text
        assert f"assert run.rounds == {result.rounds}" in text
        assert "seed=5" in text
        # check=False so a pinned *violation* would assert, not raise
        assert "check=False" in text
        assert f"len(names) == {len(result.names)}" in text

    def test_renders_halt_and_budget_kwargs(self):
        config = HuntConfig(
            algorithm="balls-into-leaves",
            n=8,
            objective="liveness",
            halt_on_name=True,
            crash_budget=3,
        )
        schedule = Schedule.of(8, [CrashEvent(2, 0)])
        result = replay(schedule, config, 5)
        text = to_pytest(schedule, config, 5, result)
        assert "halt_on_name=True" in text
        assert "crash_budget=3" in text
