"""Tests for the crash-schedule genotype."""

from __future__ import annotations

import pickle

import pytest

from repro.adversary.certification import is_certified
from repro.adversary.scheduled import ScheduledAdversary
from repro.errors import ConfigurationError
from repro.ids import sparse_ids
from repro.search.schedule import CrashEvent, Schedule
from repro.sim.batch import AdversarySpec, TrialSpec, run_trial
from repro.sim.kernel import KernelRequest, select_kernel
from repro.sim.runner import run_renaming


class TestGenotype:
    def test_canonical_orders_and_dedups_victims(self):
        schedule = Schedule.of(
            8,
            [
                CrashEvent(5, 3, (1, 1, 3, 9, 2)),  # self/dup/range receivers
                CrashEvent(2, 3, ()),  # same victim, earlier round wins
                CrashEvent(1, 0, (4,)),
            ],
        )
        assert [e.to_tuple() for e in schedule.events] == [
            (1, 0, (4,)),
            (2, 3, ()),
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Schedule.of(0, [])
        with pytest.raises(ConfigurationError):
            Schedule.of(4, [CrashEvent(0, 1)])
        with pytest.raises(ConfigurationError):
            Schedule.of(4, [CrashEvent(1, 4)])

    def test_json_roundtrip(self):
        schedule = Schedule.of(8, [CrashEvent(2, 1, (0, 3)), CrashEvent(4, 5)])
        assert Schedule.from_json(schedule.to_json()) == schedule

    def test_params_roundtrip_through_adversary_spec(self):
        schedule = Schedule.of(8, [CrashEvent(2, 1, (0, 3))])
        spec = schedule.spec()
        assert isinstance(spec, AdversarySpec)
        rebuilt = Schedule.from_params(**dict(spec.params))
        assert rebuilt == schedule

    def test_digest_is_content_addressed(self):
        a = Schedule.of(8, [CrashEvent(2, 1, (0,))])
        b = Schedule.of(8, [CrashEvent(2, 1, (0,))])
        c = Schedule.of(8, [CrashEvent(2, 1, (3,))])
        assert a.digest == b.digest
        assert a.digest != c.digest

    def test_mutation_helpers_preserve_canonical_form(self):
        schedule = Schedule.of(8, [CrashEvent(3, 2, (1,))])
        grown = schedule.with_event(CrashEvent(1, 5))
        assert grown.crashes == 2
        assert grown.events[0].round_no == 1  # re-sorted
        assert grown.without_event(0) == schedule
        swapped = schedule.replace_event(0, CrashEvent(2, 2, ()))
        assert swapped.events[0].to_tuple() == (2, 2, ())


class TestCompilation:
    def test_compiles_to_certified_scheduled_adversary(self):
        """The satellite contract: one predicate decides columnar
        eligibility for bundled strategies and compiled schedules alike."""
        schedule = Schedule.of(8, [CrashEvent(2, 0, (1,))])
        adversary = schedule.compile(sparse_ids(8))
        assert isinstance(adversary, ScheduledAdversary)
        assert is_certified(adversary)

    def test_kernel_selection_puts_compiled_schedules_on_columnar(self):
        ids = sparse_ids(8)
        schedule = Schedule.of(8, [CrashEvent(2, 0, (1,))])
        request = KernelRequest(
            algorithm="balls-into-leaves",
            ids=tuple(ids),
            seed=3,
            policy="random",
            adversary=schedule.compile(ids),
            crash_budget=7,
        )
        assert select_kernel("auto", request).name == "columnar"

    def test_compile_requires_matching_population(self):
        with pytest.raises(ConfigurationError):
            Schedule.of(8, []).compile(sparse_ids(9))

    def test_indices_bind_positionally(self):
        ids = sparse_ids(4)
        adversary = Schedule.of(4, [CrashEvent(2, 1, (0, 3))]).compile(ids)
        plan = adversary._by_round[2][0]
        assert plan.victim == ids[1]
        assert list(plan.receivers) == [ids[0], ids[3]]

    def test_out_of_schedule_events_are_clamped_harmlessly(self):
        """Events naming late rounds or already-crashed victims rely on
        the simulator's own clamping — every genotype is viable."""
        ids = sparse_ids(8)
        schedule = Schedule.of(
            8, [CrashEvent(1, 2, ()), CrashEvent(500, 3, (0,))]
        )
        run = run_renaming(
            "balls-into-leaves", ids, seed=5, adversary=schedule.compile(ids)
        )
        names = list(run.names.values())
        assert len(set(names)) == len(names)

    def test_trial_spec_roundtrip_is_picklable(self):
        schedule = Schedule.of(8, [CrashEvent(2, 1, (0,))])
        spec = TrialSpec(
            algorithm="balls-into-leaves",
            n=8,
            seed=9,
            adversary=schedule.spec(),
            capture_errors=True,
        )
        restored = pickle.loads(pickle.dumps(spec))
        result = run_trial(restored)
        assert result.error is None
        assert result.rounds >= 3
