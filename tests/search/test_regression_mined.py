"""Checked-in regressions mined by ``repro hunt`` (the automated PR 3
workflow: search -> shrink -> pin).

The schedule below is the shrunk worst case found by::

    python -m repro hunt --objective rounds --strategy hillclimb \
        --seed 1 --budget 200

on the ``balls-into-leaves n=16`` cell: a single *silent* crash of ball 6
in round 3, which drives the run to 9 rounds under the pinned trial seed
— strictly above the 7-round worst case any bundled gauntlet adversary
reaches on the same cell (5 derived seeds each).  Pinning it keeps the
mined execution stable across engine changes on both kernels.
"""

from __future__ import annotations

import pytest

from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.ids import sparse_ids
from repro.search.baseline import evaluate_bundled
from repro.search.schedule import CrashEvent, Schedule
from repro.search.shrink import replay_identical
from repro.search.strategies import HuntConfig
from repro.sim.runner import run_renaming

MINED_N = 16
MINED_SEED = 4301463716303469878
MINED_SCHEDULE = Schedule.of(MINED_N, [CrashEvent(3, 6, ())])
MINED_ROUNDS = 9


def test_hunt_regression_c443563c99():
    """The emitted-by-``to_pytest`` form: plain runner API, no search
    imports needed to reproduce."""
    ids = sparse_ids(16)
    schedule = [
        ScheduledCrash(3, ids[6], receivers=[]),
    ]
    run = run_renaming(
        "balls-into-leaves",
        ids,
        seed=MINED_SEED,
        adversary=ScheduledAdversary(schedule),
    )
    assert run.rounds == MINED_ROUNDS
    names = list(run.names.values())
    assert len(set(names)) == len(names)
    assert len(names) == 15  # one crashed ball, everyone else renamed


def test_mined_schedule_replays_bit_identically_on_both_kernels():
    config = HuntConfig(n=MINED_N, objective="rounds")
    reference, columnar = replay_identical(MINED_SCHEDULE, config, MINED_SEED)
    assert reference.rounds == columnar.rounds == MINED_ROUNDS
    assert reference.names == columnar.names


@pytest.mark.tier2
def test_mined_schedule_still_beats_the_bundled_gauntlet():
    """The comparative claim behind checking it in, re-verified nightly."""
    config = HuntConfig(n=MINED_N, objective="rounds", seed=1)
    baseline = evaluate_bundled(config, trials=5)
    assert MINED_ROUNDS > max(entry.score for entry in baseline)
