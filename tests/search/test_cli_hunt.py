"""CLI tests for the ``hunt`` verb."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestHuntCli:
    @pytest.fixture(autouse=True)
    def _sandbox_cwd(self, tmp_path, monkeypatch):
        """Hunts drop scenario + trace files in the CWD by default."""
        monkeypatch.chdir(tmp_path)

    def test_hunt_smoke_reports_comparison_and_best(self, capsys):
        assert main(
            ["hunt", "--n", "8", "--budget", "10", "--seed", "2",
             "--baseline-trials", "2", "--no-shrink"]
        ) == 0
        out = capsys.readouterr().out
        assert "worst cases on balls-into-leaves n=8" in out
        assert "worst schedule" in out
        assert "genotype" in out
        assert "reproduce with: python -m repro hunt" in out

    def test_hunt_shrink_emits_regression_snippet(self, capsys):
        assert main(
            ["hunt", "--n", "8", "--budget", "8", "--seed", "2",
             "--baseline-trials", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "shrunk to" in out
        assert "bit-identical on the reference and columnar kernels" in out
        assert "def test_hunt_regression_" in out

    def test_hunt_out_jsonl_rows_are_the_history(self, tmp_path, capsys):
        out = tmp_path / "hunt.jsonl"
        assert main(
            ["hunt", "--n", "8", "--budget", "6", "--seed", "3",
             "--baseline-trials", "1", "--no-shrink", "--out", str(out)]
        ) == 0
        assert "6 JSONL rows written" in capsys.readouterr().err
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 6
        assert [row["index"] for row in rows] == list(range(6))
        assert all(row["strategy"] == "hillclimb" for row in rows)
        assert all("schedule" in row and "score" in row for row in rows)

    def test_hunt_jsonl_identical_across_executors(self, tmp_path, capsys):
        """The determinism satellite, via the CLI surface."""
        paths = []
        for name, extra in (
            ("serial.jsonl", ["--executor", "serial"]),
            ("process.jsonl", ["--executor", "process", "--workers", "2"]),
        ):
            path = tmp_path / name
            assert main(
                ["hunt", "--n", "8", "--budget", "8", "--seed", "5",
                 "--baseline-trials", "1", "--no-shrink", "--out", str(path)]
                + extra
            ) == 0
            paths.append(path)
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_hunt_rejects_unknown_objective(self, capsys):
        with pytest.raises(SystemExit):
            main(["hunt", "--objective", "nope"])

    def test_hunt_rejects_bad_sizes_cleanly(self, capsys):
        assert main(["hunt", "--budget", "0"]) == 2
        assert main(["hunt", "--baseline-trials", "0"]) == 2
        assert main(["hunt", "--budget", "1", "--seeds-per-schedule", "2"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_hunt_flood_skips_columnar_replay_cleanly(self, capsys):
        assert main(
            ["hunt", "--algorithm", "flood", "--n", "8", "--budget", "4",
             "--seed", "1", "--baseline-trials", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "columnar kernel not applicable" in out
