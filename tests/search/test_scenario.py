"""Scenario files: round-trip, hand-edit semantics, and persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.search.scenario import (
    SCENARIO_FORMAT,
    Scenario,
    load_scenario,
    scenario_filename,
    write_scenario,
)
from repro.search.schedule import CrashEvent, Schedule
from repro.sim.batch import AdversarySpec, TrialSpec, run_trial


def _schedule():
    return Schedule.of(
        9, [CrashEvent(1, 0, (2,)), CrashEvent(2, 3, (), "omit")]
    )


def _spec(schedule=None, **overrides):
    adversary = (schedule or _schedule()).spec()
    fields = dict(
        algorithm="balls-into-leaves",
        n=9,
        seed=4,
        adversary=adversary,
        halt_on_name=True,
        crash_budget=3,
        check=False,
        capture_errors=True,
        trace="cheap",
    )
    fields.update(overrides)
    return TrialSpec(**fields)


class TestRoundTrip:
    def test_dict_round_trip_preserves_spec_and_schedule(self):
        schedule = _schedule()
        scenario = Scenario(
            spec=_spec(schedule), schedule=schedule, meta={"rounds": 11}
        )
        loaded = Scenario.from_dict(scenario.to_dict())
        assert loaded.spec == scenario.spec
        assert loaded.schedule == schedule
        assert loaded.meta == {"rounds": 11}

    def test_json_round_trip_via_file(self, tmp_path):
        schedule = _schedule()
        scenario = Scenario(
            spec=_spec(schedule),
            schedule=schedule,
            trace_path="trace-abc.jsonl",
            trace_digest="abc",
            meta={"objective": "rounds"},
        )
        path = str(tmp_path / scenario_filename(scenario.spec.digest()))
        write_scenario(scenario, path)
        loaded = load_scenario(path)
        assert loaded == scenario

    def test_non_schedule_adversary_keeps_params(self):
        spec = _spec(
            adversary=AdversarySpec.of("random", rate=0.2, delivery="uniform")
        )
        scenario = Scenario(spec=spec)
        document = scenario.to_dict()
        assert document["schedule"] is None
        assert document["spec"]["adversary"]["params"] == {
            "delivery": "uniform", "rate": 0.2,
        }
        assert Scenario.from_dict(document).spec == spec

    def test_schedule_params_not_duplicated_in_adversary_block(self):
        document = Scenario(spec=_spec(), schedule=_schedule()).to_dict()
        assert "params" not in document["spec"]["adversary"]
        assert document["schedule"]["events"]

    def test_from_trial_records_result_meta(self):
        spec = _spec()
        result = run_trial(spec)
        scenario = Scenario.from_trial(
            spec, result, schedule=_schedule(), trace_path="trace-x.jsonl",
            objective="rounds",
        )
        assert scenario.meta["rounds"] == result.rounds
        assert scenario.meta["failures"] == result.failures
        assert scenario.meta["messages_sent"] == result.messages_sent
        assert scenario.meta["objective"] == "rounds"
        assert scenario.trace_digest == spec.digest()

    def test_trace_digest_only_set_with_a_trace_path(self):
        scenario = Scenario.from_trial(_spec(), schedule=_schedule())
        assert scenario.trace_path is None
        assert scenario.trace_digest is None


class TestHandEdit:
    """The perturb-and-replay contract: the schedule block wins."""

    def test_edited_events_rebuild_the_adversary(self):
        schedule = _schedule()
        document = Scenario(spec=_spec(schedule), schedule=schedule).to_dict()
        # Move the crash a round later, straight in the serialized form.
        document["schedule"]["events"][0] = [5, 0, [2]]
        loaded = Scenario.from_dict(document)
        crash_rounds = [
            e.round_no for e in loaded.schedule.events if e.kind == "crash"
        ]
        assert crash_rounds == [5]
        edited = Schedule.from_dict(document["schedule"])
        assert loaded.spec.adversary == edited.spec()

    def test_auto_digest_label_regenerated_after_edit(self):
        schedule = _schedule()
        document = Scenario(spec=_spec(schedule), schedule=schedule).to_dict()
        stale = document["spec"]["adversary"]["label"]
        assert stale == f"schedule:{schedule.digest}"
        document["schedule"]["events"][0] = [5, 0, [2]]
        loaded = Scenario.from_dict(document)
        assert loaded.spec.adversary.label != stale
        assert loaded.spec.adversary.label == (
            f"schedule:{loaded.schedule.digest}"
        )

    def test_custom_label_survives_an_edit(self):
        schedule = _schedule()
        spec = _spec(schedule, adversary=schedule.spec("my-counterexample"))
        document = Scenario(spec=spec, schedule=schedule).to_dict()
        document["schedule"]["events"][0] = [5, 0, [2]]
        loaded = Scenario.from_dict(document)
        assert loaded.spec.adversary.label == "my-counterexample"

    def test_edited_scenario_replays(self):
        schedule = _schedule()
        document = Scenario(spec=_spec(schedule), schedule=schedule).to_dict()
        document["schedule"]["events"][0] = [3, 0, [2]]
        result = run_trial(Scenario.from_dict(document).spec)
        assert result.rounds > 0


class TestValidation:
    def test_filename_shape(self):
        assert scenario_filename("abc") == "scenario-abc.json"
        assert (
            scenario_filename("abc", prefix="hunt-scenario")
            == "hunt-scenario-abc.json"
        )

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError, match="not a repro-scenario/1"):
            Scenario.from_dict({"format": "something-else"})

    def test_missing_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="no 'spec' block"):
            Scenario.from_dict({"format": SCENARIO_FORMAT})

    def test_bad_json_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_scenario(str(path))

    def test_non_object_file_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="expected a JSON object"):
            load_scenario(str(path))

    def test_to_json_is_editable_pretty_print(self):
        text = Scenario(spec=_spec(), schedule=_schedule()).to_json()
        assert text.startswith("{\n")
        assert json.loads(text)["format"] == SCENARIO_FORMAT
