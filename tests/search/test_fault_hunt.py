"""Omission-family hunt acceptance: mine, beat the gauntlet, shrink, replay.

The fault-injection PR's headline claim, pinned: a hill-climb hunt over
the omission genotype at n=16 synthesizes a loss schedule strictly worse
(under the rounds objective) than every bundled omission adversary, the
shrunk repro is minimal, and it replays bit-identically on the reference
and columnar engines.  The mined find is the round-1 hello drop: masking
a single hello link leaves the sender permanently unknown to the masked
receiver, wedging the silenced ball past the round limit — a behavior
the capped-and-windowed bundled gauntlet deliberately cannot reach.
"""

from __future__ import annotations

import pytest

from repro.analysis.worst_case import beats_every_bundled
from repro.search.baseline import (
    BUNDLED_GAUNTLET,
    OMISSION_GAUNTLET,
    evaluate_bundled,
    gauntlet_for,
    hunt_entry,
)
from repro.search.schedule import CrashEvent, Schedule
from repro.search.shrink import replay_identical, shrink, to_pytest
from repro.search.strategies import HuntConfig, run_hunt

CONFIG = HuntConfig(
    n=16, objective="rounds", budget=120, seed=7, fault_family="omission"
)


class TestGauntletSelection:
    def test_family_maps_to_lineup(self):
        assert gauntlet_for(HuntConfig()) == BUNDLED_GAUNTLET
        assert gauntlet_for(CONFIG) == OMISSION_GAUNTLET
        mixed = gauntlet_for(HuntConfig(fault_family="mixed"))
        assert mixed == BUNDLED_GAUNTLET + OMISSION_GAUNTLET[1:]

    def test_omission_gauntlet_terminates_on_the_acceptance_cell(self):
        # Loss in the gauntlet is capped and windowed precisely so the
        # bundled runs stay finite; a wedged entry here would turn the
        # acceptance comparison into a round-limit tie.
        entries = evaluate_bundled(CONFIG, trials=5)
        assert all(not entry.error for entry in entries)


class TestOmissionAcceptanceHunt:
    """`repro hunt --objective rounds --strategy hillclimb
    --fault-family omission --seed 7 --budget 120`, as a pinned
    assertion."""

    def test_hillclimb_beats_every_bundled_omission_adversary(self):
        result = run_hunt(CONFIG, "hillclimb")
        best = result.best
        assert all(event.kind == "omit" for event in best.schedule.events)

        entries = evaluate_bundled(CONFIG, trials=5)
        bundled_worst = max(entry.score for entry in entries)
        assert best.score > bundled_worst
        assert beats_every_bundled([hunt_entry(best)] + entries)

        seed = best.best_result.spec.seed
        shrunk = shrink(best.schedule, CONFIG, seed)
        assert shrunk.score >= best.score
        assert shrunk.score > bundled_worst
        assert len(shrunk.schedule.events) == 1
        (event,) = shrunk.schedule.events
        assert event.kind == "omit"
        assert event.round_no == 1  # the hello-round drop is the find

        reference, columnar = replay_identical(shrunk.schedule, CONFIG, seed)
        assert reference.rounds == columnar.rounds
        assert reference.rounds > bundled_worst

        rendered = to_pytest(shrunk.schedule, CONFIG, seed, reference)
        assert "ScheduledFaultAdversary" in rendered
        assert "ScheduledOmission" in rendered


class TestOmitScheduleRegression:
    """The shrunk find, pinned structurally: an *asymmetric* hello drop
    (ball 1's hello reaches only one peer; everyone else never learns it
    exists) wedges the execution past the round limit on both engines.
    Symmetric drops recover — if nobody hears the hello, the silenced
    ball resolves contention inside its own complete view — so the
    losing pattern is precisely a partitioned membership picture."""

    def test_asymmetric_hello_drop_livelocks(self):
        schedule = Schedule.of(
            16, [CrashEvent(1, 1, frozenset({5}), kind="omit")]
        )
        reference, columnar = replay_identical(schedule, CONFIG, 7)
        assert reference.error and "RoundLimitExceeded" in reference.error
        assert columnar.error == reference.error

    def test_fully_silenced_hello_recovers(self):
        schedule = Schedule.of(16, [CrashEvent(1, 1, frozenset(), kind="omit")])
        reference, _ = replay_identical(schedule, CONFIG, 7)
        assert reference.error is None
        assert reference.omissions == 15
