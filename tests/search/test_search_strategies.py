"""Tests for the search strategies, most importantly determinism: a hunt
is a function of (config, strategy) only — not of the executor."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.search.strategies import (
    STRATEGIES,
    Evaluator,
    HuntConfig,
    mutate,
    random_schedule,
    run_hunt,
)
from repro.sim.rng import derive_rng

TINY = dict(algorithm="balls-into-leaves", n=8, objective="rounds")


class TestHuntConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HuntConfig(algorithm="nope")
        with pytest.raises(ConfigurationError):
            HuntConfig(n=1)
        with pytest.raises(ConfigurationError):
            HuntConfig(budget=0)
        with pytest.raises(ConfigurationError):
            HuntConfig(objective="nope")
        with pytest.raises(ConfigurationError):
            HuntConfig(budget=1, seeds_per_schedule=2)  # fits no candidate

    def test_genotype_bounds_default_from_the_model(self):
        config = HuntConfig(n=16)
        assert config.effective_crash_budget == 15
        assert config.effective_max_crashes == 15
        assert config.effective_max_round == 2 * 4 + 6
        capped = HuntConfig(n=16, crash_budget=3)
        assert capped.effective_max_crashes == 3


class TestEvaluator:
    def test_budget_truncates_deterministically(self):
        config = HuntConfig(budget=5, **TINY)
        evaluator = Evaluator(config)
        rng = derive_rng(0, "test")
        schedules = [random_schedule(rng, config) for _ in range(8)]
        evaluations = evaluator.evaluate(schedules)
        assert len(evaluations) == 5
        assert evaluator.exhausted
        assert evaluator.evaluate(schedules) == []

    def test_seeds_per_schedule_scores_the_max(self):
        config = HuntConfig(budget=6, seeds_per_schedule=3, **TINY)
        evaluator = Evaluator(config)
        rng = derive_rng(1, "test")
        evaluations = evaluator.evaluate(
            [random_schedule(rng, config) for _ in range(4)]
        )
        assert len(evaluations) == 2  # 6 trials / 3 seeds each
        for evaluation in evaluations:
            assert len(evaluation.results) == 3
            assert evaluation.score == max(evaluation.scores)
            assert evaluation.best_result in evaluation.results


class TestGenotypeSampling:
    def test_samples_respect_bounds(self):
        config = HuntConfig(n=8, max_crashes=3, max_round=5)
        rng = derive_rng(2, "test")
        for _ in range(50):
            schedule = random_schedule(rng, config)
            assert 1 <= schedule.crashes <= 3
            assert all(1 <= e.round_no <= 5 for e in schedule.events)
            mutated = mutate(rng, schedule, config)
            assert mutated.crashes <= 3
            assert mutated.events  # never collapses to the empty schedule
            assert all(1 <= e.round_no <= 5 for e in mutated.events)

    def test_mutation_respects_a_cap_of_one(self):
        """The remove-op fallback resamples in place instead of growing
        past the cap."""
        config = HuntConfig(n=8, max_crashes=1)
        rng = derive_rng(3, "test")
        schedule = random_schedule(rng, config)
        for _ in range(60):
            schedule = mutate(rng, schedule, config)
            assert schedule.crashes == 1


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
class TestStrategies:
    def test_spends_exactly_the_budget(self, strategy):
        config = HuntConfig(budget=17, seed=4, **TINY)
        result = run_hunt(config, strategy)
        assert len(result.evaluations) == 17
        assert [e.index for e in result.evaluations] == list(range(17))

    def test_serial_and_process_histories_byte_identical(self, strategy):
        """The determinism satellite: same seed + budget => identical
        jsonl rows on the serial and multiprocessing executors."""
        config = HuntConfig(budget=12, seed=7, **TINY)
        serial = run_hunt(config, strategy)
        process = run_hunt(config, strategy, executor="process", workers=2)
        assert json.dumps(serial.rows()) == json.dumps(process.rows())

    def test_best_and_top_are_consistent(self, strategy):
        config = HuntConfig(budget=10, seed=9, **TINY)
        result = run_hunt(config, strategy)
        top = result.top(3)
        assert top[0].score == result.best.score
        digests = [e.schedule.digest for e in top]
        assert len(digests) == len(set(digests))  # distinct schedules


class TestDeterminismProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        strategy=st.sampled_from(sorted(STRATEGIES)),
        budget=st.integers(min_value=2, max_value=10),
    )
    def test_rerun_is_byte_identical(self, seed, strategy, budget):
        config = HuntConfig(budget=budget, seed=seed, **TINY)
        first = run_hunt(config, strategy)
        second = run_hunt(config, strategy)
        assert json.dumps(first.rows()) == json.dumps(second.rows())
