"""Tests for the search objectives (scores, not raises)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.search.objectives import (
    ERROR_SCORE,
    OBJECTIVES,
    as_objective,
    objective_summaries,
)
from repro.sim.batch import TrialResult, TrialSpec


def result_with(
    n=8,
    rounds=7,
    failures=0,
    messages=50,
    names=None,
    error=None,
    last_round_named=7,
):
    """A hand-built trial outcome (names default to a clean renaming)."""
    if names is None:
        names = tuple((1000 + i, i) for i in range(n - failures))
    return TrialResult(
        spec=TrialSpec(algorithm="balls-into-leaves", n=n, seed=0),
        rounds=rounds,
        failures=failures,
        messages_sent=messages,
        messages_delivered=messages * 2,
        last_round_named=last_round_named,
        names=names,
        error=error,
    )


class TestRegistry:
    def test_expected_objectives_exist(self):
        assert set(OBJECTIVES) == {
            "rounds",
            "messages",
            "namespace",
            "invariant",
            "liveness",
            "tail",
            "disruption",
        }

    def test_as_objective_coerces_and_validates(self):
        assert as_objective("rounds") is OBJECTIVES["rounds"]
        assert as_objective(OBJECTIVES["rounds"]) is OBJECTIVES["rounds"]
        with pytest.raises(ConfigurationError):
            as_objective("nope")

    def test_summaries_cover_every_objective(self):
        summaries = objective_summaries()
        assert len(summaries) == len(OBJECTIVES)
        assert all(" — " in line for line in summaries)


class TestScores:
    def test_rounds_is_the_round_count(self):
        assert OBJECTIVES["rounds"].score(result_with(rounds=11)) == 11.0

    def test_messages_is_the_send_count(self):
        assert OBJECTIVES["messages"].score(result_with(messages=321)) == 321.0

    def test_namespace_scores_width_and_range_breaks(self):
        clean = result_with(names=((1, 0), (2, 3)))
        assert OBJECTIVES["namespace"].score(clean) == 4.0
        broken = result_with(names=((1, 0), (2, 9)))  # 9 outside 0..7
        assert OBJECTIVES["namespace"].score(broken) > 10_000

    def test_invariant_partial_scores_are_monotonic(self):
        objective = OBJECTIVES["invariant"]
        clean = objective.score(result_with())
        missing = objective.score(result_with(names=tuple((1000 + i, i) for i in range(6))))
        duplicate = objective.score(result_with(names=((1, 0), (2, 0))))
        assert clean < 1.0  # only the round gradient
        assert clean < missing < duplicate

    def test_invariant_ignores_crashed_processes(self):
        # 3 crashed, 5 survivors all named: no termination violation.
        ok = result_with(failures=3, names=tuple((1000 + i, i) for i in range(5)))
        assert OBJECTIVES["invariant"].score(ok) < 1.0

    def test_liveness_rewards_late_naming_and_dominated_by_deadlock(self):
        objective = OBJECTIVES["liveness"]
        early = objective.score(result_with(last_round_named=3))
        late = objective.score(result_with(last_round_named=9, rounds=9))
        assert early < late
        deadlocked = objective.score(
            result_with(error="RoundLimitExceeded: ...", rounds=80, names=())
        )
        assert deadlocked >= ERROR_SCORE

    def test_error_dominates_every_violation_sensitive_objective(self):
        failed = result_with(error="SimulationError: boom", names=(), messages=0)
        for name in ("messages", "namespace", "invariant", "liveness"):
            assert OBJECTIVES[name].score(failed) >= ERROR_SCORE
