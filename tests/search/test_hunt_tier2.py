"""Nightly (tier-2) end-to-end hunts.

Two claims are re-verified with real search budgets:

* the acceptance hunt — hill-climbing with the documented command-line
  budget synthesizes a schedule strictly worse than every bundled
  adversary on its cell, and the shrunk repro replays bit-identically on
  both kernels;
* the PR 3 ghost-leaf class — under halt-on-name, the hill-climb hunt
  densely covers the schedule class that deadlocked before the
  announced-termination fix (mid-path crashes delivered to a proper
  subset of peers).  Pre-fix, any such candidate would have scored the
  liveness :data:`~repro.search.objectives.ERROR_SCORE`; asserting that
  the class is explored *and* that no candidate reaches that score is
  the automated re-run of the bug hunt against the fixed engine.
"""

from __future__ import annotations

import pytest

from repro.search.baseline import evaluate_bundled
from repro.search.objectives import ERROR_SCORE, as_objective
from repro.search.schedule import CrashEvent, Schedule
from repro.search.shrink import replay, replay_identical, shrink
from repro.search.strategies import HuntConfig, run_hunt

pytestmark = pytest.mark.tier2


def ghost_leaf_class(schedule: Schedule) -> bool:
    """The pre-fix deadlock predicate (structural): some crash lands in
    a path round (even) and reaches a proper non-empty receiver subset,
    so a partial receiver simulates the victim onto a leaf it never
    announced."""
    return any(
        event.round_no % 2 == 0 and 0 < len(event.receivers) < schedule.n - 1
        for event in schedule.events
    )


class TestAcceptanceHunt:
    """`repro hunt --objective rounds --strategy hillclimb --seed 1
    --budget 200`, as a pinned assertion."""

    def test_hillclimb_beats_every_bundled_adversary_and_shrinks(self):
        config = HuntConfig(n=16, objective="rounds", budget=200, seed=1)
        result = run_hunt(config, "hillclimb")
        baseline = evaluate_bundled(config, trials=5)
        bundled_worst = max(entry.score for entry in baseline)
        best = result.best
        assert best.score > bundled_worst

        seed = best.best_result.spec.seed
        shrunk = shrink(best.schedule, config, seed)
        assert shrunk.score >= best.score
        assert shrunk.schedule.crashes <= best.schedule.crashes
        reference, columnar = replay_identical(shrunk.schedule, config, seed)
        assert reference.rounds == columnar.rounds
        assert reference.rounds > bundled_worst


class TestGhostLeafClassHunt:
    CONFIG = HuntConfig(
        n=9, objective="liveness", budget=400, seed=1, halt_on_name=True
    )

    def test_hillclimb_covers_the_class_and_finds_no_deadlock(self):
        result = run_hunt(self.CONFIG, "hillclimb")
        matches = [
            e for e in result.evaluations if ghost_leaf_class(e.schedule)
        ]
        # The search must actually exercise the once-deadlocking class...
        assert len(matches) >= 20
        # ...the objective must score those candidates (a pre-fix engine
        # deadlocks here, scoring >= ERROR_SCORE and failing this)...
        assert all(0 < e.score < ERROR_SCORE for e in matches)
        # ...and nothing anywhere may reach the liveness penalty.
        assert result.best.score < ERROR_SCORE

    def test_the_original_pr3_genotype_is_scored_finite(self):
        """The exact mined repro (n=9, round-2 crash of ball 0 heard only
        by ball 1) runs to completion post-fix under its original seed."""
        genotype = Schedule.of(9, [CrashEvent(2, 0, (1,))])
        assert ghost_leaf_class(genotype)
        result = replay(genotype, self.CONFIG, 1)
        assert result.error is None
        score = as_objective("liveness").score(result)
        assert 0 < score < ERROR_SCORE
