"""Mutation suite: every monitor fires on its seeded violation.

A monitor that never fires is indistinguishable from no monitor.  Each
test here corrupts a *real* engine state into one specific known-bad
shape (duplicate name, over-capacity leaf, announced ball off its leaf,
crashed-ball retention, frozen progress) and asserts the corresponding
invariant — and only it — fires, with correct round/ball/node
attribution.  The wedged-engine tests drive the corruption through the
full ``run_renaming`` / batch stack to pin the abort and capture paths.
"""

from __future__ import annotations

import pytest

from repro.core.columnar import ColumnarBallsEngine, ColumnarCrashEngine
from repro.adversary import RandomCrashAdversary
from repro.errors import MonitorViolation
from repro.ids import sparse_ids
from repro.monitor.invariants import (
    STALL_WINDOW,
    RunMonitor,
    observe_balls_engine,
    observe_crash_engine,
)
from repro.sim.batch import AdversarySpec, TrialSpec, run_trial
from repro.sim.runner import run_renaming
from repro.tree.topology import cached_topology

N = 16


def fresh_engine(halt_on_name=False, seed=3):
    ids = sparse_ids(N)
    engine = ColumnarBallsEngine(
        ids, seed=seed, policy="random", halt_on_name=halt_on_name
    )
    return ids, engine


def fresh_monitor(ids, halt_on_name=False):
    return RunMonitor(
        sorted(ids), cached_topology(N).arrays(), halt_on_name=halt_on_name
    )


def run_to_completion(engine):
    round_no = 0
    while engine.running_count:
        round_no += 1
        engine.step(round_no)
    return round_no


def leaf_and_inner(n=N):
    arrays = cached_topology(n).arrays()
    leaves = [i for i, span in enumerate(arrays.span) if span == 1]
    inner = [i for i, span in enumerate(arrays.span) if span > 1]
    return leaves, inner


class TestSeededColumnarMutations:
    def test_duplicate_name_fires_uniqueness(self):
        ids, engine = fresh_engine()
        last = run_to_completion(engine)
        engine.decision[4] = engine.decision[2]
        monitor = fresh_monitor(ids)
        observe_balls_engine(monitor, engine, last)
        assert [v.invariant for v in monitor.violations] == ["uniqueness"]
        violation = monitor.violations[0]
        assert violation.round_no == last and violation.ball == 4
        labels = sorted(ids)
        assert repr(labels[2]) in violation.detail
        assert repr(labels[4]) in violation.detail

    def test_out_of_range_name_fires_namespace(self):
        ids, engine = fresh_engine()
        last = run_to_completion(engine)
        engine.decision[0] = N + 7
        monitor = fresh_monitor(ids)
        observe_balls_engine(monitor, engine, last)
        assert [v.invariant for v in monitor.violations] == ["namespace"]
        assert monitor.violations[0].ball == 0
        assert f"outside 0..{N - 1}" in monitor.violations[0].detail

    def test_over_capacity_leaf_fires_leaf_capacity(self):
        ids, engine = fresh_engine()
        engine.step(1)
        engine.step(2)
        leaves, _ = leaf_and_inner()
        engine.pos[0] = leaves[0]
        engine.pos[1] = leaves[0]
        monitor = fresh_monitor(ids)
        observe_balls_engine(monitor, engine, 2)
        found = [v for v in monitor.violations if v.invariant == "leaf-capacity"]
        assert len(found) == 1
        assert found[0].node == leaves[0] and found[0].round_no == 2
        # At least the two teleported balls (plus any legitimate tenant).
        assert f"leaf {leaves[0]} holds" in found[0].detail
        assert "(0 announced)" in found[0].detail

    def test_announced_ball_off_its_leaf_fires_retention(self):
        ids, engine = fresh_engine(halt_on_name=True)
        engine.step(1)
        engine.step(2)
        _, inner = leaf_and_inner()
        engine.halted[3] = True
        engine.pos[3] = inner[0]
        monitor = fresh_monitor(ids, halt_on_name=True)
        observe_balls_engine(monitor, engine, 2)
        found = [v for v in monitor.violations if v.invariant == "retention"]
        assert len(found) == 1
        assert found[0].ball == 3 and found[0].node == inner[0]

    def test_crashed_ball_retention_fires_after_deadline(self):
        ids = sparse_ids(N)
        engine = ColumnarCrashEngine(
            ids,
            seed=5,
            policy="random",
            adversary=RandomCrashAdversary(0.0, seed=1),
        )
        engine.step(1)
        engine.step(2)
        # Forge a crash the views never processed: the ball stays ACTIVE
        # in every survivor's view past the purge deadline.
        victim = 2
        engine.crashed[victim] = True
        monitor = fresh_monitor(ids)
        observe_crash_engine(monitor, engine, 2)  # deadline round: silent
        assert monitor.violations == []
        observe_crash_engine(monitor, engine, 3)
        found = [
            v for v in monitor.violations if v.invariant == "crash-retention"
        ]
        assert found, monitor.report()
        assert all(v.ball == victim for v in found)
        assert "crashed in round 2" in found[0].detail

    def test_frozen_engine_fires_progress(self):
        ids, engine = fresh_engine()
        engine.step(1)
        engine.step(2)
        assert engine.running_count > 0
        monitor = fresh_monitor(ids)
        # The engine stops being stepped: its observable state freezes
        # with balls still running — the monitor must call the deadlock
        # instead of spinning to the round limit.
        for round_no in range(2, 2 + STALL_WINDOW + 2):
            observe_balls_engine(monitor, engine, round_no)
        assert monitor.deadlocked
        stalls = [v for v in monitor.violations if v.invariant == "progress"]
        assert len(stalls) == 1
        assert f"no state change for {STALL_WINDOW} rounds" in stalls[0].detail


class _WedgedBallsEngine(ColumnarBallsEngine):
    """A columnar engine whose balls stop moving after ``WEDGE_ROUND``."""

    WEDGE_ROUND = 2

    def step(self, round_no):
        if round_no > self.WEDGE_ROUND:
            return
        super().step(round_no)


class TestEndToEndAbort:
    """Corruption surfaces through the full runner/batch stack."""

    def _wedge(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.columnar.ColumnarBallsEngine", _WedgedBallsEngine
        )

    def test_wedged_run_raises_monitor_violation(self, monkeypatch):
        self._wedge(monkeypatch)
        with pytest.raises(MonitorViolation) as caught:
            run_renaming(
                "balls-into-leaves",
                sparse_ids(N),
                seed=3,
                kernel="columnar",
                monitor="cheap",
            )
        assert any(
            v.invariant == "progress" for v in caught.value.violations
        )
        assert "[progress]" in str(caught.value)

    def test_unmonitored_wedged_run_spins_to_the_round_limit(self, monkeypatch):
        # Without the monitor the same wedge burns the whole round
        # budget — the "silent spin" the progress monitor exists to end.
        from repro.errors import RoundLimitExceeded

        self._wedge(monkeypatch)
        with pytest.raises(RoundLimitExceeded):
            run_renaming(
                "balls-into-leaves", sparse_ids(N), seed=3, kernel="columnar"
            )

    def test_batch_captures_violations_as_data(self, monkeypatch):
        self._wedge(monkeypatch)
        spec = TrialSpec(
            algorithm="balls-into-leaves",
            n=N,
            seed=3,
            adversary=AdversarySpec(),
            kernel="columnar",
            capture_errors=True,
            monitor="cheap",
        )
        result = run_trial(spec)
        assert result.error is not None
        assert result.monitor == "cheap"
        assert any("[progress]" in line for line in result.violations)
        row = result.to_row()
        assert row["monitor"] == "cheap"
        assert row["violations"] == list(result.violations)
