"""Differential monitor suite: identical verdicts on every kernel.

The monitors' contract is that the violation report is a property of the
*run*, not of the engine that produced it: the reference, columnar, and
(where eligible) vectorized kernels must emit byte-identical rendered
reports over the full adversary grid — and monitoring must never change
the run itself (same names, same rounds, same message counts).

Tier 1 covers a small algorithm × adversary × halt-mode × seed grid plus
the PR 3 ghost-leaf crash schedules as end-to-end regressions; the
tier-2 deep grid pushes the same assertions to n = 2^12.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    RandomCrashAdversary,
    SandwichAdversary,
    ScheduledAdversary,
    ScheduledCrash,
)
from repro.core.mt19937 import HAVE_NUMPY
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming

ALGORITHMS = ("balls-into-leaves", "early-terminating", "rank-descent")

#: name -> builder; separate instances per run (adversaries hold state).
ADVERSARIES = {
    "none": lambda: None,
    "random": lambda: RandomCrashAdversary(0.15, seed=77),
    "sandwich": lambda: SandwichAdversary(),
}


def _monitored(algorithm, n, seed, kernel, adversary, halt_on_name, monitor="cheap"):
    run = run_renaming(
        algorithm,
        sparse_ids(n),
        seed=seed,
        kernel=kernel,
        adversary=adversary,
        halt_on_name=halt_on_name,
        monitor=monitor,
    )
    return run


def _report(run):
    return [violation.render() for violation in run.violations]


def _outcome(run):
    return (dict(run.names), run.rounds, run.failures)


class TestDifferentialGrid:
    """Reference vs columnar (vs vectorized) over the adversary grid."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("adversary_name", sorted(ADVERSARIES))
    @pytest.mark.parametrize("halt_on_name", [False, True])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_identical_reports_across_kernels(
        self, algorithm, adversary_name, halt_on_name, seed
    ):
        build = ADVERSARIES[adversary_name]
        n = 16
        reference = _monitored(
            algorithm, n, seed, "reference", build(), halt_on_name
        )
        columnar = _monitored(
            algorithm, n, seed, "columnar", build(), halt_on_name
        )
        assert _report(reference) == _report(columnar)
        assert _report(reference) == []  # the protocol holds
        assert _outcome(reference) == _outcome(columnar)
        if HAVE_NUMPY and adversary_name == "none":
            vectorized = _monitored(
                algorithm, n, seed, "vectorized", None, halt_on_name
            )
            assert _report(vectorized) == _report(reference)
            assert _outcome(vectorized) == _outcome(reference)

    @pytest.mark.parametrize("kernel", ["reference", "columnar"])
    def test_monitoring_does_not_change_the_run(self, kernel):
        n, seed = 16, 9
        adversary = RandomCrashAdversary(0.2, seed=5)
        monitored = _monitored(
            "balls-into-leaves", n, seed, kernel, adversary, False
        )
        bare = run_renaming(
            "balls-into-leaves",
            sparse_ids(n),
            seed=seed,
            kernel=kernel,
            adversary=RandomCrashAdversary(0.2, seed=5),
        )
        assert monitored.monitor == "cheap" and bare.monitor == "off"
        assert _outcome(monitored) == _outcome(bare)
        assert (
            monitored.metrics.total_messages_sent
            == bare.metrics.total_messages_sent
        )

    def test_full_monitor_agrees_with_cheap_on_reference(self):
        n, seed = 16, 4
        cheap = _monitored("balls-into-leaves", n, seed, "reference", None, False)
        full = _monitored(
            "balls-into-leaves", n, seed, "reference", None, False, monitor="full"
        )
        assert full.monitor == "full"
        assert _report(cheap) == _report(full) == []
        assert _outcome(cheap) == _outcome(full)


class TestGhostScheduleRegressions:
    """The PR 3 mid-path-crash ghost schedules, monitored end to end.

    These schedules once deadlocked (the ghost reserved a survivor's
    leaf); the fix makes them terminate cleanly, so the monitors must
    stay silent — on both kernels, with identical reports.
    """

    CASES = [
        # (n, seed, victim index, receiver indices)
        pytest.param(9, 1, 0, [1], id="n9-original-hypothesis-find"),
        pytest.param(5, 1, 0, [1], id="n5-smallest"),
        pytest.param(7, 5, 1, [2, 4], id="n7-two-receivers"),
        pytest.param(13, 5, 2, [1, 3], id="n13-later-victim"),
    ]

    @pytest.mark.parametrize("n,seed,victim,receivers", CASES)
    def test_ghost_schedule_runs_clean_under_monitors(
        self, n, seed, victim, receivers
    ):
        ids = sparse_ids(n)

        def schedule():
            return ScheduledAdversary(
                [
                    ScheduledCrash(
                        2, ids[victim], receivers=[ids[r] for r in receivers]
                    )
                ]
            )

        runs = {}
        for kernel in ("reference", "columnar"):
            runs[kernel] = run_renaming(
                "balls-into-leaves",
                ids,
                seed=seed,
                adversary=schedule(),
                halt_on_name=True,
                kernel=kernel,
                check_invariants=True,
            )
        reference, columnar = runs["reference"], runs["columnar"]
        assert reference.monitor == "cheap" == columnar.monitor
        assert _report(reference) == _report(columnar) == []
        names = list(reference.names.values())
        assert len(names) == n - 1 and len(set(names)) == n - 1
        assert _outcome(reference) == _outcome(columnar)


@pytest.mark.tier2
class TestDeepDifferentialGrid:
    """The same contract at scale: n up to 2^12."""

    @pytest.mark.parametrize("n", [256, 1024, 4096])
    @pytest.mark.parametrize("halt_on_name", [False, True])
    def test_failure_free_deep(self, n, halt_on_name):
        columnar = _monitored(
            "balls-into-leaves", n, 1, "columnar", None, halt_on_name
        )
        assert _report(columnar) == []
        if HAVE_NUMPY:
            vectorized = _monitored(
                "balls-into-leaves", n, 1, "vectorized", None, halt_on_name
            )
            assert _report(vectorized) == []
            assert _outcome(vectorized) == _outcome(columnar)

    @pytest.mark.parametrize("n", [256, 1024])
    @pytest.mark.parametrize(
        "adversary_name", ["random", "sandwich"]
    )
    def test_adversarial_deep(self, n, adversary_name):
        build = ADVERSARIES[adversary_name]
        reference = _monitored(
            "balls-into-leaves", n, 2, "reference", build(), True
        )
        columnar = _monitored(
            "balls-into-leaves", n, 2, "columnar", build(), True
        )
        assert _report(reference) == _report(columnar) == []
        assert _outcome(reference) == _outcome(columnar)


class TestOmissionSilencedAnnotation:
    """Omission faults: honest uniqueness verdicts, identical on both
    engines, annotated with the silenced-not-crashed provenance.

    A targeted omission adversary silences two balls through the first
    phases: their peers purge them (as if crashed) and reuse their
    names, while the silenced balls decide inside their own stale views.
    The resulting duplicate names are *expected* injected degradation —
    the monitor must report them (no suppression) and must attribute
    them to omission so sweeps can separate injected faults from
    algorithmic bugs.
    """

    def _run(self, kernel, monitor="cheap"):
        from repro.adversary import TargetedOmissionAdversary
        from repro.ids import sparse_ids
        from repro.sim.runner import run_renaming

        # check=False: the injected duplicate names are the point; the
        # monitor (not the post-hoc checker) is under test here.
        return run_renaming(
            "balls-into-leaves",
            sparse_ids(8),
            seed=0,
            kernel=kernel,
            adversary=TargetedOmissionAdversary(count=2, rounds=(1, 6)),
            halt_on_name=True,
            monitor=monitor,
            check=False,
        )

    def test_reports_match_and_carry_the_annotation(self):
        reference = self._run("reference")
        columnar = self._run("columnar")
        report = _report(reference)
        assert report == _report(columnar)
        assert report, "the silenced cell must surface uniqueness findings"
        assert any("silenced by omission" in line for line in report)
        assert any("not crashed" in line for line in report)
        assert _outcome(reference) == _outcome(columnar)

    def test_monitoring_does_not_change_the_run(self):
        unmonitored = self._run("columnar", monitor="off")
        assert _outcome(unmonitored) == _outcome(self._run("columnar"))
