"""Unit tests of the columnar invariant monitors.

Every predicate of :mod:`repro.monitor.invariants` is exercised directly
on synthetic flat-array states — one test per invariant, plus the
progress/deadlock fingerprint machinery and the vectorized
:class:`StackedMonitor`'s parity with the scalar ``evaluate_round``.
"""

from __future__ import annotations

import pytest

from repro.core.lifecycle import BallStatus
from repro.core.mt19937 import HAVE_NUMPY
from repro.errors import ConfigurationError
from repro.monitor.invariants import (
    MONITOR_MODES,
    STALL_WINDOW,
    RunMonitor,
    Violation,
    check_monitor_mode,
    evaluate_round,
)
from repro.tree.topology import cached_topology

ACTIVE = int(BallStatus.ACTIVE)
ANNOUNCED = int(BallStatus.ANNOUNCED)


def arrays_for(n):
    return cached_topology(n).arrays()


def leaves_of(arrays):
    return [i for i, span in enumerate(arrays.span) if span == 1]


def inner_of(arrays):
    return [i for i, span in enumerate(arrays.span) if span > 1]


class TestMonitorModes:
    def test_modes_tuple(self):
        assert MONITOR_MODES == ("off", "cheap", "full")

    @pytest.mark.parametrize("mode", MONITOR_MODES)
    def test_valid_modes_pass_through(self, mode):
        assert check_monitor_mode(mode) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            check_monitor_mode("paranoid")


class TestViolationRecord:
    def test_render_is_the_jsonl_form(self):
        violation = Violation("uniqueness", 5, "balls 'a' and 'b' clash")
        assert violation.render() == "round 5 [uniqueness] balls 'a' and 'b' clash"

    def test_sort_key_orders_by_round_then_invariant(self):
        a = Violation("uniqueness", 3, "z", ball=0)
        b = Violation("namespace", 3, "a", ball=1)
        c = Violation("namespace", 2, "late", ball=9)
        ordered = sorted([a, b, c], key=Violation.sort_key)
        assert ordered == [c, b, a]


class TestEvaluateRound:
    """One synthetic flat-array state per predicate."""

    N = 4

    def setup_method(self):
        self.arrays = arrays_for(self.N)
        self.labels = [f"ball{j}" for j in range(self.N)]
        self.leaves = leaves_of(self.arrays)
        self.inner = inner_of(self.arrays)

    def _eval(self, **kwargs):
        kwargs.setdefault("views", [])
        kwargs.setdefault("decisions", [None] * self.N)
        return evaluate_round(7, self.arrays, self.labels, **kwargs)

    def test_clean_state_is_silent(self):
        pos = [self.leaves[j] for j in range(self.N)]
        found = self._eval(
            views=[(pos, bytes(self.N))],
            decisions=[0, 1, 2, 3],
        )
        assert found == []

    def test_namespace_catches_out_of_range_name(self):
        found = self._eval(decisions=[0, self.N + 2, None, None])
        assert [v.invariant for v in found] == ["namespace"]
        assert found[0].ball == 1
        assert f"name {self.N + 2} outside 0..{self.N - 1}" in found[0].detail
        assert "ball1" in found[0].detail

    def test_uniqueness_catches_duplicate_name(self):
        found = self._eval(decisions=[2, None, 2, None])
        assert [v.invariant for v in found] == ["uniqueness"]
        # Attribution points at the second claimant; both labels named.
        assert found[0].ball == 2
        assert "'ball0'" in found[0].detail and "'ball2'" in found[0].detail

    def test_crashed_balls_decisions_are_ignored(self):
        found = self._eval(
            decisions=[2, 2, self.N + 9, None],
            crashed=[False, True, True, False],
        )
        assert found == []

    def test_leaf_capacity_catches_two_active_balls(self):
        leaf = self.leaves[0]
        pos = [leaf, leaf, -1, -1]
        found = self._eval(views=[(pos, bytes(self.N))])
        assert [v.invariant for v in found] == ["leaf-capacity"]
        assert found[0].node == leaf
        assert f"leaf {leaf} holds 2 balls (0 announced)" in found[0].detail

    def test_announced_terminators_extend_the_allowance(self):
        leaf = self.leaves[1]
        pos = [leaf, leaf, leaf, -1]
        status = bytes([ACTIVE, ANNOUNCED, ANNOUNCED, ACTIVE])
        assert self._eval(views=[(pos, status)]) == []
        # A second ACTIVE ball breaks the headroom rule again.
        pos = [leaf, leaf, leaf, leaf]
        status = bytes([ACTIVE, ANNOUNCED, ANNOUNCED, ACTIVE])
        found = self._eval(views=[(pos, status)])
        assert [v.invariant for v in found] == ["leaf-capacity"]
        assert "holds 4 balls (2 announced)" in found[0].detail

    def test_retention_catches_announced_at_inner_node(self):
        node = self.inner[0]
        pos = [node, -1, -1, -1]
        status = bytes([ANNOUNCED, ACTIVE, ACTIVE, ACTIVE])
        found = self._eval(views=[(pos, status)])
        assert [v.invariant for v in found] == ["retention"]
        assert found[0].ball == 0 and found[0].node == node

    def test_crash_retention_fires_after_the_purge_deadline(self):
        leaf = self.leaves[2]
        pos = [leaf, -1, -1, -1]
        view = (pos, bytes(self.N))
        crashed = [True, False, False, False]
        # Observed crashed this very round: still within the deadline.
        assert (
            self._eval(views=[view], crashed=crashed, crash_rounds={0: 7})
            == []
        )
        found = self._eval(views=[view], crashed=crashed, crash_rounds={0: 3})
        assert [v.invariant for v in found] == ["crash-retention"]
        assert "crashed in round 3" in found[0].detail

    def test_views_deduplicate_by_content(self):
        leaf = self.leaves[0]
        pos = [leaf, leaf, -1, -1]
        view = (pos, bytes(self.N))
        found = self._eval(views=[view, (list(pos), bytes(self.N)), view])
        assert len(found) == 1

    def test_findings_come_out_sorted(self):
        leaf = self.leaves[0]
        pos = [leaf, leaf, -1, -1]
        found = self._eval(
            views=[(pos, bytes(self.N))],
            decisions=[1, 1, self.N + 5, None],
        )
        assert [v.invariant for v in found] == [
            "leaf-capacity",
            "namespace",
            "uniqueness",
        ]
        assert found == sorted(found, key=Violation.sort_key)


class TestRunMonitorProgress:
    N = 4

    def _monitor(self, **kwargs):
        return RunMonitor(
            [f"ball{j}" for j in range(self.N)], arrays_for(self.N), **kwargs
        )

    def _frozen_observation(self, monitor, round_no, running=2):
        arrays = monitor.arrays
        leaf = leaves_of(arrays)[0]
        pos = [leaf, -1, -1, -1]
        return monitor.observe(
            round_no,
            views=[(pos, bytes(self.N))],
            decisions=[None] * self.N,
            running=running,
        )

    def test_deadlock_latches_after_the_stall_window(self):
        monitor = self._monitor()
        for round_no in range(1, STALL_WINDOW + 1):
            self._frozen_observation(monitor, round_no)
            assert not monitor.deadlocked
        found = self._frozen_observation(monitor, STALL_WINDOW + 1)
        assert monitor.deadlocked
        assert [v.invariant for v in found] == ["progress"]
        assert (
            f"no state change for {STALL_WINDOW} rounds with 2 ball(s) "
            "running" in found[0].detail
        )
        # The stall is reported once, not once per further frozen round.
        self._frozen_observation(monitor, STALL_WINDOW + 2)
        assert sum(v.invariant == "progress" for v in monitor.violations) == 1

    def test_no_stall_without_running_balls(self):
        monitor = self._monitor()
        for round_no in range(1, 3 * STALL_WINDOW):
            self._frozen_observation(monitor, round_no, running=0)
        assert not monitor.deadlocked

    def test_any_state_change_resets_the_streak(self):
        monitor = self._monitor()
        arrays = monitor.arrays
        leaves = leaves_of(arrays)
        for round_no in range(1, 4 * STALL_WINDOW):
            # Alternate between two distinct states: never a fixed point.
            leaf = leaves[round_no % 2]
            monitor.observe(
                round_no,
                views=[([leaf, -1, -1, -1], bytes(self.N))],
                decisions=[None] * self.N,
                running=1,
            )
        assert not monitor.deadlocked

    def test_crash_round_attribution_uses_first_observation(self):
        monitor = self._monitor()
        leaf = leaves_of(monitor.arrays)[0]
        crashed = [True, False, False, False]
        view = ([leaf, -1, -1, -1], bytes(self.N))
        monitor.observe(
            5, views=[view], decisions=[None] * self.N, crashed=crashed
        )
        found = monitor.observe(
            7, views=[view], decisions=[None] * self.N, crashed=crashed
        )
        assert [v.invariant for v in found] == ["crash-retention"]
        assert "crashed in round 5" in found[0].detail

    def test_report_renders_every_finding(self):
        monitor = self._monitor()
        monitor.observe(
            3, views=[], decisions=[0, 0, None, None]
        )
        assert monitor.report() == [v.render() for v in monitor.violations]
        assert monitor.report()[0].startswith("round 3 [uniqueness]")


@pytest.mark.skipif(not HAVE_NUMPY, reason="vectorized engine needs numpy")
class TestStackedMonitorParity:
    """The vectorized screens produce the scalar monitors' verdicts."""

    def _engine(self, n=8, trials=4, halt_on_name=False):
        from repro.core.vectorized import VectorizedCellEngine
        from repro.sim.rng import derive_seed

        seeds = [derive_seed(11, "stacked", i) for i in range(trials)]
        return VectorizedCellEngine(
            list(range(n)), seeds, halt_on_name=halt_on_name
        )

    def test_clean_runs_report_nothing(self):
        from repro.monitor.invariants import StackedMonitor

        engine = self._engine()
        monitor = StackedMonitor(engine)
        engine.run(observer=monitor)
        assert not monitor.deadlocked
        for t in range(engine.trials):
            assert monitor.violations(t) == []

    def test_duplicate_decision_flags_only_the_corrupt_trial(self):
        import numpy as np

        from repro.monitor.invariants import StackedMonitor

        engine = self._engine()
        engine.run()
        n, corrupt = engine.n, 2
        base = corrupt * n
        # Forge a duplicate decided name inside one trial.
        engine.decision[base + 1] = engine.decision[base + 0]
        monitor = StackedMonitor(engine)
        monitor(engine, 9, np.zeros(0, dtype=np.int64))
        for t in range(engine.trials):
            found = monitor.violations(t)
            if t != corrupt:
                assert found == []
        found = monitor.violations(corrupt)
        assert [v.invariant for v in found] == ["uniqueness"]
        # String-identical to the scalar monitor on the same state.
        scalar = evaluate_round(
            9,
            cached_topology(n).arrays(),
            engine.labels,
            views=[],
            decisions=[
                None if d < 0 else int(d)
                for d in engine.decision[base : base + n]
            ],
        )
        assert [v.render() for v in found] == [v.render() for v in scalar]

    def test_out_of_range_decision_flags_namespace(self):
        import numpy as np

        from repro.monitor.invariants import StackedMonitor

        engine = self._engine()
        engine.run()
        engine.decision[0] = engine.n + 3
        monitor = StackedMonitor(engine)
        monitor(engine, 9, np.zeros(0, dtype=np.int64))
        found = monitor.violations(0)
        assert [v.invariant for v in found] == ["namespace"]

    def test_over_capacity_leaf_flags_the_trial(self):
        import numpy as np

        from repro.monitor.invariants import StackedMonitor

        engine = self._engine()
        engine.run(stop_after=2)
        n = engine.n
        # Teleport two balls of trial 1 onto the same leaf.
        leaf = int(np.flatnonzero(engine._topo.is_leaf)[0])
        engine.pos[n + 0] = leaf
        engine.pos[n + 1] = leaf
        monitor = StackedMonitor(engine)
        monitor(engine, 3, np.zeros(0, dtype=np.int64))
        found = monitor.violations(1)
        assert "leaf-capacity" in [v.invariant for v in found]
        assert monitor.violations(0) == []

    def test_frozen_trial_reports_progress_stall(self):
        import numpy as np

        from repro.monitor.invariants import StackedMonitor

        engine = self._engine(trials=2)
        engine.run(stop_after=2)
        # Wedge both trials by pretending balls still run while the
        # state never changes again: feed the monitor the same state.
        engine.running[:] = 1
        monitor = StackedMonitor(engine)
        for round_no in range(3, 3 + STALL_WINDOW + 1):
            monitor(engine, round_no, np.zeros(0, dtype=np.int64))
        assert monitor.deadlocked
        for t in range(engine.trials):
            stalls = [
                v for v in monitor.violations(t) if v.invariant == "progress"
            ]
            assert len(stalls) == 1
            assert f"no state change for {STALL_WINDOW} rounds" in stalls[0].detail


class TestSilencedAnnotation:
    """Uniqueness findings name omission-silenced claimants."""

    N = 4

    def setup_method(self):
        self.arrays = arrays_for(self.N)
        self.labels = [f"ball{j}" for j in range(self.N)]

    def test_evaluate_round_annotates_silenced_claimants(self):
        found = evaluate_round(
            7,
            self.arrays,
            self.labels,
            views=[],
            decisions=[2, None, 2, None],
            silenced_rounds={0: 3},
        )
        assert [v.invariant for v in found] == ["uniqueness"]
        assert (
            "(ball 'ball0' silenced by omission since round 3, not crashed)"
            in found[0].detail
        )

    def test_unsilenced_duplicates_are_unannotated(self):
        found = evaluate_round(
            7,
            self.arrays,
            self.labels,
            views=[],
            decisions=[2, None, 2, None],
            silenced_rounds={1: 3},
        )
        assert "silenced" not in found[0].detail

    def test_run_monitor_threads_silenced_rounds(self):
        monitor = RunMonitor(self.labels, self.arrays)
        monitor.observe(
            1,
            views=[],
            decisions=[None] * self.N,
            silenced={2: 1},
            running=self.N,
        )
        found = monitor.observe(
            2,
            views=[],
            decisions=[0, None, 0, None],
            running=2,
        )
        # The silenced map is sticky: round 1's observation annotates
        # round 2's finding.
        assert "silenced by omission since round 1" in found[0].detail
