"""Determinism and correctness of the importance-splitting estimator.

The estimator's contract: byte-identical results for the same config on
any executor (serial / process pools of any width) and on either fast
engine (columnar / vectorized — exercising the engine-independent
checkpoint interchange), honest level ladders (odd rounds only: balls
halt in position rounds), and statistical agreement with direct Monte
Carlo where both are feasible.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mt19937 import HAVE_NUMPY
from repro.errors import ConfigurationError
from repro.monitor.splitting import (
    TailConfig,
    default_levels,
    loglog_unit,
    run_tail,
)


def rows_json(result):
    return json.dumps(result.rows(), sort_keys=True)


class TestLevels:
    @pytest.mark.parametrize(
        "n,unit", [(2, 1), (4, 1), (16, 2), (64, 3), (1024, 4), (4096, 4), (1 << 16, 4)]
    )
    def test_loglog_unit(self, n, unit):
        assert loglog_unit(n) == unit

    def test_default_ladder_is_odd_rounds_spanning_the_k_range(self):
        # Balls halt only in odd position rounds, so even levels would be
        # degenerate (factor exactly 1).
        assert default_levels(1024) == (7, 9, 11, 13, 15, 17, 19, 21)
        assert default_levels(64, 2, 4) == (5, 7, 9, 11, 13)
        for level in default_levels(256, 2, 6):
            assert level % 2 == 1

    def test_ladder_never_starts_below_round_three(self):
        assert default_levels(2, 1, 2)[0] >= 3

    def test_bad_k_range_rejected(self):
        with pytest.raises(ConfigurationError):
            default_levels(64, 3, 2)
        with pytest.raises(ConfigurationError):
            default_levels(64, 0, 2)

    def test_non_increasing_levels_rejected(self):
        config = TailConfig(n=16, levels=(5, 5, 7))
        with pytest.raises(ConfigurationError):
            config.resolved_levels()

    def test_stage_trials_grow_and_cap(self):
        config = TailConfig(n=16, trials=100, growth=4.0, max_trials=1000)
        assert [config.stage_trials(s) for s in range(4)] == [
            100,
            400,
            1000,
            1000,
        ]
        flat = TailConfig(n=16, trials=64)
        assert [flat.stage_trials(s) for s in range(3)] == [64, 64, 64]


class TestConfigValidation:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tail(TailConfig(n=16, algorithm="quicksort"))

    def test_flood_has_no_round_tail(self):
        with pytest.raises(ConfigurationError):
            run_tail(TailConfig(n=16, algorithm="flood"))

    def test_reference_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tail(TailConfig(n=16, kernel="reference"))

    def test_growth_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tail(TailConfig(n=16, growth=0.5))

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tail(TailConfig(n=16), executor="threads")


SMALL = dict(n=16, trials=32, levels=(3, 5, 7), chunk=8, growth=2.0)


class TestDeterminism:
    def test_serial_twice_is_byte_identical(self):
        a = run_tail(TailConfig(seed=4, **SMALL))
        b = run_tail(TailConfig(seed=4, **SMALL))
        assert rows_json(a) == rows_json(b)

    def test_serial_equals_process_pool(self):
        config = TailConfig(seed=4, **SMALL)
        serial = run_tail(config, executor="serial")
        pooled = run_tail(config, executor="process", workers=2)
        assert serial.stages == pooled.stages
        assert rows_json(serial) == rows_json(pooled)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both fast engines")
    def test_columnar_equals_vectorized(self):
        # Crosses the engine-interchange boundary: stage-0 checkpoints
        # exported by one engine restore into the other's clones.
        base = dict(SMALL)
        columnar = run_tail(TailConfig(seed=7, kernel="columnar", **base))
        vectorized = run_tail(TailConfig(seed=7, kernel="vectorized", **base))
        assert columnar.stages == vectorized.stages
        a, b = columnar.rows(), vectorized.rows()
        assert a == b

    def test_chunk_size_is_invisible(self):
        narrow = dict(SMALL, chunk=3)
        wide = dict(SMALL, chunk=64)
        a = run_tail(TailConfig(seed=11, **narrow))
        b = run_tail(TailConfig(seed=11, **wide))
        assert a.stages == b.stages

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_executor_identity_is_a_property(self, seed):
        config = TailConfig(
            seed=seed, n=16, trials=16, levels=(3, 5), chunk=4
        )
        serial = run_tail(config, executor="serial")
        pooled = run_tail(config, executor="process", workers=2)
        assert rows_json(serial) == rows_json(pooled)


class TestEstimates:
    def test_stage_zero_is_direct_monte_carlo(self):
        config = TailConfig(seed=1, n=16, trials=64, levels=(5,))
        result = run_tail(config)
        stage = result.stages[0]
        assert stage.trials == 64 and stage.level == 5
        assert result.estimate == pytest.approx(stage.survivors / 64)
        assert result.rows()[-1]["row"] == "estimate"

    def test_extinct_ladder_reports_an_upper_bound(self):
        # Level 99 is far past any terminating run at n=16.
        config = TailConfig(seed=1, n=16, trials=16, levels=(5, 99))
        result = run_tail(config)
        assert result.estimate == 0.0
        assert result.rel_std is None
        bound = result.upper_bound
        assert bound is not None
        last = result.stages[-1]
        assert bound == pytest.approx(
            result.estimate_after(last.stage - 1) / last.trials
        )
        assert "extinct at level 99" in result.render()

    def test_live_ladder_has_no_upper_bound(self):
        config = TailConfig(seed=1, n=16, trials=64, levels=(3,))
        assert run_tail(config).upper_bound is None

    def test_splitting_agrees_with_direct_monte_carlo(self):
        if not HAVE_NUMPY:
            pytest.skip("direct MC sweep needs the vectorized engine")
        import numpy as np

        from repro.core.vectorized import VectorizedCellEngine
        from repro.sim.rng import derive_seed

        n, level = 16, 7
        # Direct MC: P(rounds > 7) over 4000 independent trials.
        seeds = [derive_seed(2, "p", n, i) for i in range(4000)]
        engine = VectorizedCellEngine(list(range(n)), seeds)
        engine.run()
        mc = float(np.mean(np.asarray(engine.rounds) > level))
        assert mc > 0  # the event is measurable directly at this n
        # Splitting: two stages (5 then 7) with a grown clone population.
        config = TailConfig(
            seed=6, n=n, trials=256, levels=(5, 7), growth=8.0
        )
        result = run_tail(config)
        assert len(result.stages) == 2
        estimate = result.estimate
        assert estimate > 0
        # Generous joint CI: both are noisy, but they estimate the same
        # probability (mc ~ 0.012 here, rel errors ~ 0.15 each).
        assert 0.3 < estimate / mc < 3.0


class TestExperimentRegistration:
    def test_exp_tail_is_registered(self):
        from repro.experiments.registry import all_experiments

        assert any(
            entry.experiment_id == "EXP-TAIL" for entry in all_experiments()
        )

    def test_smoke_scale_is_deterministic_across_executors(self):
        from repro.experiments import tail

        serial = tail.run(scale="smoke", seed=2, executor="serial")
        pooled = tail.run(scale="smoke", seed=2, executor="process", workers=2)
        assert [t.render() for t in serial.tables] == [
            t.render() for t in pooled.tables
        ]
        assert serial.notes == pooled.notes
