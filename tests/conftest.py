"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ids import sparse_ids
from repro.tree.local_view import LocalTreeView
from repro.tree.topology import Topology


@pytest.fixture
def topo8() -> Topology:
    """An 8-leaf topology (depth 3)."""
    return Topology(8)


@pytest.fixture
def topo16() -> Topology:
    """A 16-leaf topology (depth 4)."""
    return Topology(16)


@pytest.fixture
def view8(topo8: Topology) -> LocalTreeView:
    """An 8-leaf view with 8 integer balls at the root."""
    return LocalTreeView(topo8, range(8))


@pytest.fixture
def ids16() -> list:
    """16 sparse original identifiers."""
    return sparse_ids(16)
