"""Unit tests for the deterministic rank-descent baseline."""

from __future__ import annotations

from repro.adversary.splitter import HalfSplitAdversary
from repro.baselines.rank_descent import build_rank_descent
from repro.ids import sparse_ids
from repro.sim.checker import RenamingSpec, check_renaming
from repro.sim.simulator import Simulation
from repro.sim.runner import run_renaming


class TestRankDescent:
    def test_failure_free_one_phase(self):
        run = run_renaming("rank-descent", sparse_ids(32), seed=0)
        assert run.rounds == 3

    def test_names_preserve_label_order_without_failures(self):
        """Deterministic rank paths are order-preserving when fault-free."""
        ids = sparse_ids(16)
        run = run_renaming("rank-descent", ids, seed=0)
        assert run.names == {pid: rank for rank, pid in enumerate(sorted(ids))}

    def test_determinism_no_seed_sensitivity(self):
        """Rank descent ignores randomness entirely."""
        first = run_renaming("rank-descent", sparse_ids(16), seed=1)
        second = run_renaming("rank-descent", sparse_ids(16), seed=999)
        assert first.names == second.names
        assert first.rounds == second.rounds

    def test_correct_under_half_split(self):
        ids = sparse_ids(32)
        procs, _store = build_rank_descent(ids, seed=0)
        adversary = HalfSplitAdversary(
            rounds=frozenset({1, 3, 5, 7, 9}), seed=0
        )
        result = Simulation(procs, adversary=adversary, max_rounds=400).run()
        check_renaming(result, RenamingSpec(n=32))

    def test_builder_exposes_store(self):
        procs, store = build_rank_descent(sparse_ids(4), seed=0)
        Simulation(procs, max_rounds=64).run()
        reference = store.view_of(procs[0].pid)
        assert reference.all_at_leaves()
