"""Unit tests for the flooding baseline."""

from __future__ import annotations

import pytest

from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.baselines.flood_consensus import FloodRenamingProcess, build_flood_renaming
from repro.errors import ConfigurationError
from repro.ids import sparse_ids
from repro.sim.checker import RenamingSpec, check_renaming
from repro.sim.simulator import Simulation


class TestFloodRenaming:
    def test_rounds_equal_budget_plus_one(self):
        procs = build_flood_renaming(sparse_ids(5), crash_budget=4)
        result = Simulation(procs, crash_budget=4).run()
        assert result.rounds == 5
        check_renaming(result, RenamingSpec(n=5))

    def test_names_are_sorted_ranks(self):
        ids = [50, 10, 30]
        procs = build_flood_renaming(ids, crash_budget=2)
        result = Simulation(procs, crash_budget=2).run()
        assert result.decisions == {10: 0, 30: 1, 50: 2}

    def test_tolerates_partial_delivery_chain(self):
        """A chain of crashes relaying knowledge to only one peer each."""
        ids = sparse_ids(5)
        schedule = [
            ScheduledCrash(1, ids[0], receivers=[ids[1]]),
            ScheduledCrash(2, ids[1], receivers=[ids[2]]),
            ScheduledCrash(3, ids[2], receivers=[ids[3]]),
        ]
        procs = build_flood_renaming(ids, crash_budget=4)
        result = Simulation(
            procs, adversary=ScheduledAdversary(schedule), crash_budget=4
        ).run()
        check_renaming(result, RenamingSpec(n=5))
        # Survivors agree on the set, so their names are distinct ranks.
        survivors = {pid: result.decisions[pid] for pid in (ids[3], ids[4])}
        assert len(set(survivors.values())) == 2

    def test_crashed_ids_may_still_occupy_ranks(self):
        ids = sparse_ids(3)
        schedule = [ScheduledCrash(2, ids[0], receivers="all")]
        procs = build_flood_renaming(ids, crash_budget=2)
        result = Simulation(
            procs, adversary=ScheduledAdversary(schedule), crash_budget=2
        ).run()
        # The crashed lowest id was flooded before crashing, so survivors
        # keep it in their sets and take ranks 1 and 2.
        assert sorted(result.decisions[pid] for pid in ids[1:]) == [1, 2]

    def test_known_grows_monotonically(self):
        proc = FloodRenamingProcess(1, crash_budget=2)
        proc.deliver(1, {2: ("ids", frozenset({2}))})
        assert proc.known == frozenset({1, 2})
        proc.deliver(2, {})
        assert proc.known == frozenset({1, 2})

    def test_rejects_negative_budget(self):
        with pytest.raises(ConfigurationError):
            FloodRenamingProcess(1, crash_budget=-1)

    def test_rejects_empty_ids(self):
        with pytest.raises(ConfigurationError):
            build_flood_renaming([], crash_budget=0)

    def test_zero_budget_single_round(self):
        procs = build_flood_renaming(sparse_ids(4), crash_budget=0)
        result = Simulation(procs, crash_budget=0).run()
        assert result.rounds == 1
        check_renaming(result, RenamingSpec(n=4))
