"""Unit tests for the approximate-agreement substrate."""

from __future__ import annotations

import pytest

from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.baselines.approximate_agreement import (
    ApproximateAgreementProcess,
    build_approximate_agreement,
    decision_diameter,
    rounds_for,
)
from repro.errors import ConfigurationError
from repro.experiments.approx_agreement import ExtremeHolderAdversary
from repro.ids import sparse_ids
from repro.sim.simulator import Simulation


def run_aa(values, rounds, adversary=None, budget=None):
    ids = sparse_ids(len(values))
    processes = build_approximate_agreement(ids, values, rounds=rounds)
    result = Simulation(
        processes,
        adversary=adversary,
        crash_budget=budget if budget is not None else len(values) - 1,
        max_rounds=rounds + 2,
    ).run()
    return result, processes, ids


class TestConvergence:
    def test_failure_free_one_round_exact(self):
        result, _, _ = run_aa([0.0, 10.0, 4.0], rounds=1)
        assert decision_diameter(result.decisions) == 0.0
        assert set(result.decisions.values()) == {5.0}

    def test_values_stay_in_initial_interval(self):
        result, _, _ = run_aa([2.0, 8.0, 5.0], rounds=3)
        assert all(2.0 <= v <= 8.0 for v in result.decisions.values())

    def test_single_process(self):
        result, _, _ = run_aa([7.0], rounds=2)
        assert result.decisions[sparse_ids(1)[0]] == 7.0

    def test_crash_splits_then_reconverges(self):
        ids = sparse_ids(4)
        # The max holder (index 3) crashes in round 1, seen by ids[0] only.
        adversary = ScheduledAdversary(
            [ScheduledCrash(1, ids[3], receivers=[ids[0]])]
        )
        values = [0.0, 0.0, 0.0, 16.0]
        processes = build_approximate_agreement(ids, values, rounds=4)
        result = Simulation(processes, adversary=adversary, max_rounds=8).run()
        survivors = {
            pid: value for pid, value in result.decisions.items() if pid != ids[3]
        }
        assert decision_diameter(survivors) == 0.0

    def test_history_tracks_rounds(self):
        _, processes, _ = run_aa([1.0, 3.0], rounds=3)
        assert all(len(p.history) == 4 for p in processes)  # initial + 3 rounds


class TestExtremeHolderAdversary:
    def test_diameter_shrinks_despite_adaptive_crashes(self):
        values = [float(i) for i in range(16)]
        adversary = ExtremeHolderAdversary(max_crashes=8, seed=1)
        rounds = rounds_for(0.5, 15.0, 8)
        result, _, _ = run_aa(values, rounds, adversary=adversary)
        correct = {
            pid: value
            for pid, value in result.decisions.items()
            if pid not in result.crashed and value is not None
        }
        assert decision_diameter(correct) <= 0.5

    def test_respects_cap(self):
        values = [float(i) for i in range(8)]
        adversary = ExtremeHolderAdversary(max_crashes=2, seed=1)
        result, _, _ = run_aa(values, rounds=8, adversary=adversary)
        assert len(result.crashed) <= 2


class TestValidation:
    def test_rounds_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ApproximateAgreementProcess(1, 0.0, rounds=0)

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            build_approximate_agreement([1, 2], [0.0], rounds=1)

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            build_approximate_agreement([], [], rounds=1)

    def test_rounds_for_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            rounds_for(0.0, 10.0, 1)

    def test_rounds_for_scales(self):
        assert rounds_for(1.0, 1024.0, 0) == 10
        assert rounds_for(1.0, 1024.0, 5) == 15

    def test_decision_diameter_handles_none(self):
        assert decision_diameter({"a": None, "b": 3.0}) == 0.0
