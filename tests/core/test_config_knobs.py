"""The config seam: one test per ``REPRO_*`` knob.

Every reader must be a per-call environment read (never cached), so the
CLI and tests can set a knob at any point; and validation must be loud
for knobs that error (stream budgets) and forgiving for knobs that may
only cost speed (thread fanout, SHA backend).
"""

import pytest

from repro import config
from repro.errors import ConfigurationError


class TestVecThreads:
    def test_default_is_cpu_count_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_VEC_THREADS", raising=False)
        assert config.vec_threads() >= 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_THREADS", "3")
        assert config.vec_threads() == 3

    def test_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_THREADS", "0")
        assert config.vec_threads() == 1

    def test_junk_degrades_to_serial_not_error(self, monkeypatch):
        # The knob cannot change results, so a typo must not kill a run.
        monkeypatch.setenv("REPRO_VEC_THREADS", "many")
        assert config.vec_threads() == 1

    def test_setter_writes_the_environment(self, monkeypatch):
        # setenv first so monkeypatch restores the key after the direct
        # environment write the setter performs.
        monkeypatch.setenv("REPRO_VEC_THREADS", "1")
        config.set_vec_threads(5)
        assert config.vec_threads() == 5

    def test_setter_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            config.set_vec_threads(0)


class TestVecMaxStreams:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VEC_MAX_STREAMS", raising=False)
        assert config.vec_max_streams() == config.DEFAULT_MAX_STREAMS == 1 << 17

    def test_env_override_read_per_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_MAX_STREAMS", "48")
        assert config.vec_max_streams() == 48
        monkeypatch.setenv("REPRO_VEC_MAX_STREAMS", "64")
        assert config.vec_max_streams() == 64

    def test_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_MAX_STREAMS", "-7")
        assert config.vec_max_streams() == 1

    def test_junk_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_MAX_STREAMS", "lots")
        with pytest.raises(ConfigurationError, match="REPRO_VEC_MAX_STREAMS"):
            config.vec_max_streams()


class TestCrashMinStreams:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VEC_CRASH_MIN_STREAMS", raising=False)
        assert (
            config.crash_min_streams()
            == config.DEFAULT_CRASH_MIN_STREAMS
            == 1 << 10
        )

    def test_zero_means_always_stack(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_CRASH_MIN_STREAMS", "0")
        assert config.crash_min_streams() == 0

    def test_clamped_to_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_CRASH_MIN_STREAMS", "-5")
        assert config.crash_min_streams() == 0

    def test_junk_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_CRASH_MIN_STREAMS", "x")
        with pytest.raises(ConfigurationError):
            config.crash_min_streams()


class TestSha256Lanes:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHA256_LANES", raising=False)
        assert config.sha256_lanes() == "auto"

    @pytest.mark.parametrize("raw", ["1", "on", "force", "ON", "Force"])
    def test_on_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SHA256_LANES", raw)
        assert config.sha256_lanes() == "on"

    @pytest.mark.parametrize("raw", ["0", "off", "OFF"])
    def test_off_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SHA256_LANES", raw)
        assert config.sha256_lanes() == "off"

    def test_unrecognized_falls_back_to_auto(self, monkeypatch):
        # A typo can only cost speed, never correctness.
        monkeypatch.setenv("REPRO_SHA256_LANES", "turbo")
        assert config.sha256_lanes() == "auto"
        assert config.sha256_lanes() in config.SHA256_LANE_MODES
