"""Behavioural tests of Algorithm 1 as a whole."""

from __future__ import annotations

import pytest

from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.core.balls_into_leaves import BallProcess, build_balls_into_leaves
from repro.core.config import BallsIntoLeavesConfig
from repro.errors import ConfigurationError
from repro.ids import sparse_ids
from repro.sim.simulator import Simulation
from repro.sim.runner import run_renaming
from repro.tree import node as nd


class TestBuild:
    def test_builder_shares_one_store(self):
        processes, store = build_balls_into_leaves(sparse_ids(4), seed=0)
        assert len(processes) == 4
        assert all(proc._store is store for proc in processes)

    def test_builder_rejects_duplicates(self):
        with pytest.raises(ValueError):
            build_balls_into_leaves([1, 1])

    def test_builder_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            build_balls_into_leaves([])


class TestRoundStructure:
    def test_round_count_is_one_plus_two_per_phase(self):
        run = run_renaming("balls-into-leaves", sparse_ids(16), seed=7)
        assert run.rounds % 2 == 1  # hello + 2 * phases
        assert run.phases == (run.rounds - 1) // 2

    def test_phase_tracking(self):
        processes, _store = build_balls_into_leaves(sparse_ids(4), seed=1)
        simulation = Simulation(processes, max_rounds=64)
        simulation.step()  # hello
        assert all(proc.phase == 1 for proc in processes)
        simulation.step()  # paths
        simulation.step()  # positions
        running = [p for p in processes if not p.halted]
        assert all(proc.phase >= 1 for proc in processes)
        assert all(proc.phase == 2 for proc in running)

    def test_names_are_leaf_ranks(self):
        processes, store = build_balls_into_leaves(sparse_ids(8), seed=2)
        Simulation(processes, max_rounds=64).run()
        for proc in processes:
            position = store.view_of(proc.pid).position(proc.pid)
            assert nd.is_leaf(position)
            assert proc.decision == nd.leaf_rank(position)

    def test_round_named_precedes_halt(self):
        processes, _ = build_balls_into_leaves(sparse_ids(16), seed=3)
        Simulation(processes, max_rounds=64).run()
        for proc in processes:
            assert proc.round_named is not None
            assert proc.round_halted is not None
            assert proc.round_named <= proc.round_halted


class TestNameStability:
    def test_name_never_changes_once_at_leaf(self):
        """A ball that reached a leaf is never displaced (Appendix A)."""
        processes, store = build_balls_into_leaves(sparse_ids(16), seed=5)
        simulation = Simulation(processes, max_rounds=64)
        first_leaf: dict = {}
        while simulation.step():
            for proc in processes:
                if proc.pid in simulation.crashed or proc.pid not in store.view_of(
                    proc.pid
                ):
                    continue
                position = store.view_of(proc.pid).position(proc.pid)
                if nd.is_leaf(position):
                    rank = nd.leaf_rank(position)
                    assert first_leaf.setdefault(proc.pid, rank) == rank


class TestCrashScenarios:
    def test_crash_during_hello_shrinks_namespace_usage(self):
        ids = sparse_ids(8)
        adversary = ScheduledAdversary([ScheduledCrash(1, ids[0], receivers="none")])
        run = run_renaming("balls-into-leaves", ids, seed=1, adversary=adversary)
        assert ids[0] in run.crashed
        assert len(run.names) == 7
        assert len(set(run.names.values())) == 7

    def test_crash_mid_path_round_with_partial_delivery(self):
        ids = sparse_ids(8)
        half = ids[1::2]
        adversary = ScheduledAdversary([ScheduledCrash(2, ids[0], receivers=half)])
        run = run_renaming(
            "balls-into-leaves", ids, seed=2, adversary=adversary, check_invariants=True
        )
        assert len(set(run.names.values())) == 7

    def test_crash_mid_position_round(self):
        ids = sparse_ids(8)
        adversary = ScheduledAdversary([ScheduledCrash(3, ids[3], receivers=ids[:2])])
        run = run_renaming(
            "balls-into-leaves", ids, seed=3, adversary=adversary, check_invariants=True
        )
        assert len(set(run.names.values())) == 7

    def test_all_but_one_crash(self):
        ids = sparse_ids(5)
        adversary = ScheduledAdversary(
            [ScheduledCrash(2, pid, receivers="none") for pid in ids[1:]]
        )
        run = run_renaming("balls-into-leaves", ids, seed=4, adversary=adversary)
        assert set(run.names) == {ids[0]}

    def test_cascading_crashes_across_phases(self):
        ids = sparse_ids(12)
        schedule = [
            ScheduledCrash(2, ids[0], receivers=ids[1::2]),
            ScheduledCrash(3, ids[1], receivers=ids[2::3]),
            ScheduledCrash(4, ids[2], receivers="none"),
            ScheduledCrash(5, ids[3], receivers=ids[4:6]),
        ]
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=5,
            adversary=ScheduledAdversary(schedule),
            check_invariants=True,
        )
        survivors = [pid for pid in ids if pid not in run.crashed]
        assert sorted(run.names) == sorted(survivors)


class TestEarlyTerminatingVariant:
    def test_failure_free_takes_three_rounds(self):
        for n in (2, 8, 64, 200):
            run = run_renaming("early-terminating", sparse_ids(n), seed=0)
            assert run.rounds == 3, f"n={n}"

    def test_names_equal_label_ranks_without_failures(self):
        ids = sparse_ids(16)
        run = run_renaming("early-terminating", ids, seed=0)
        expected = {pid: rank for rank, pid in enumerate(sorted(ids))}
        assert run.names == expected

    def test_single_hello_crash_forces_extra_phases(self):
        ids = sparse_ids(16)
        adversary = ScheduledAdversary(
            [ScheduledCrash(1, ids[0], receivers=ids[1::2])]
        )
        run = run_renaming("early-terminating", ids, seed=1, adversary=adversary)
        assert run.rounds > 3  # collisions from rank shifts need resolving
        assert len(run.names) == 15
