"""Runtime telemetry: the StageTimers stage-attribution collector."""

from __future__ import annotations

import pytest

from repro.core.instrumentation import (
    TELEMETRY_STAGES,
    TIMERS,
    StageTimers,
)
from repro.core.mt19937 import HAVE_NUMPY
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming


@pytest.fixture(autouse=True)
def _quiesce_global_timers():
    """Tests below toggle the module-level collector; never leak it on."""
    yield
    TIMERS.disable()
    TIMERS.reset()


class TestStageTimers:
    def test_disabled_is_free_and_records_nothing(self):
        timers = StageTimers()
        started = timers.start()
        assert started == 0.0
        timers.stop("seeding", started)
        assert timers.snapshot() == {}

    def test_enable_records_calls_and_seconds(self):
        timers = StageTimers()
        timers.enable()
        for _ in range(3):
            timers.stop("movement", timers.start())
        snapshot = timers.snapshot()
        assert snapshot["movement"]["calls"] == 3
        assert snapshot["movement"]["seconds"] >= 0.0

    def test_enable_resets_previous_counts(self):
        timers = StageTimers()
        timers.enable()
        timers.stop("seeding", timers.start())
        timers.enable()
        assert timers.snapshot() == {}

    def test_snapshot_orders_known_stages_first(self):
        timers = StageTimers()
        timers.enable()
        timers.stop("zebra", timers.start())
        timers.stop("monitor", timers.start())
        timers.stop("seeding", timers.start())
        ordered = list(timers.snapshot())
        known = [s for s in TELEMETRY_STAGES if s in ordered]
        assert ordered == known + ["zebra"]

    def test_disable_stops_collection(self):
        timers = StageTimers()
        timers.enable()
        timers.disable()
        timers.stop("seeding", timers.start())
        assert timers.snapshot() == {}


class TestStageAttribution:
    """The hooks at the kernel seams report the documented stages."""

    def test_columnar_run_attributes_stages(self):
        TIMERS.enable()
        run_renaming(
            "balls-into-leaves",
            sparse_ids(16),
            seed=3,
            kernel="columnar",
            monitor="cheap",
        )
        snapshot = TIMERS.snapshot()
        assert snapshot["seeding"]["calls"] >= 1
        assert snapshot["movement"]["calls"] >= 1
        assert snapshot["monitor"]["calls"] >= 1

    @pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")
    def test_vectorized_run_attributes_stages(self):
        TIMERS.enable()
        run_renaming(
            "balls-into-leaves",
            sparse_ids(16),
            seed=3,
            kernel="vectorized",
        )
        snapshot = TIMERS.snapshot()
        assert snapshot["seeding"]["calls"] >= 1
        assert snapshot["twist"]["calls"] >= 1
        assert snapshot["movement"]["calls"] >= 1

    def test_timers_off_means_no_attribution(self):
        run_renaming(
            "balls-into-leaves", sparse_ids(8), seed=3, kernel="columnar"
        )
        assert TIMERS.snapshot() == {}

    def test_telemetry_does_not_perturb_results(self):
        plain = run_renaming(
            "balls-into-leaves", sparse_ids(16), seed=5, kernel="columnar"
        )
        TIMERS.enable()
        timed = run_renaming(
            "balls-into-leaves", sparse_ids(16), seed=5, kernel="columnar"
        )
        assert timed.names == plain.names
        assert timed.rounds == plain.rounds
        assert timed.metrics.rounds == plain.metrics.rounds
