"""Unit tests for the wire format and the phase-stats observer."""

from __future__ import annotations

from repro.core.messages import (
    hello_message,
    is_hello,
    parse_path,
    parse_position,
    path_message,
    position_message,
)
import pytest

from repro.core.instrumentation import TreeStatsObserver
from repro.errors import SimulationError
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming


class TestMessages:
    def test_hello_round_trip(self):
        assert is_hello(hello_message())
        assert not is_hello(("path", ()))
        assert not is_hello("hello")

    def test_path_round_trip(self):
        path = ((0, 8), (0, 4))
        assert parse_path(path_message(path)) == path
        assert parse_path(hello_message()) is None
        assert parse_path(position_message((0, 8))) is None
        assert parse_path(None) is None

    def test_position_round_trip(self):
        assert parse_position(position_message((2, 3))) == (2, 3)
        assert parse_position(path_message(((0, 8),))) is None

    def test_messages_are_hashable(self):
        # The shared-view fingerprinting relies on tuple payloads.
        {hello_message(), path_message(((0, 2),)), position_message((0, 1))}


class TestTreeStatsObserver:
    def test_phase_stats_shape(self):
        run = run_renaming(
            "balls-into-leaves", sparse_ids(32), seed=1, collect_phase_stats=True
        )
        assert run.phase_stats
        phases = [stats.phase for stats in run.phase_stats]
        assert phases == list(range(1, len(phases) + 1))
        for stats in run.phase_stats:
            assert stats.round_no == 2 * stats.phase + 1
            assert 0 <= stats.balls_at_leaves <= stats.balls <= 32
            assert stats.bmax_inner >= 0
            assert stats.max_path_population >= stats.bmax_inner

    def test_final_phase_all_at_leaves(self):
        run = run_renaming(
            "balls-into-leaves", sparse_ids(16), seed=2, collect_phase_stats=True
        )
        final = run.phase_stats[-1]
        assert final.balls_at_leaves == final.balls == 16
        assert final.bmax_inner == 0

    def test_trajectories(self):
        run = run_renaming(
            "balls-into-leaves", sparse_ids(64), seed=3, collect_phase_stats=True
        )
        observer = TreeStatsObserver.__new__(TreeStatsObserver)
        observer.phases = run.phase_stats
        bmax = observer.bmax_trajectory()
        paths = observer.path_population_trajectory()
        assert len(bmax) == len(paths) == len(run.phase_stats)
        assert bmax[-1] == 0

    def test_first_phase_occupancy_below_sqrt_bound(self):
        """Lemma 4 flavour: phase-1 bmax is far below n for large n."""
        run = run_renaming(
            "balls-into-leaves", sparse_ids(256), seed=4, collect_phase_stats=True
        )
        assert run.phase_stats[0].bmax_inner < 256 / 4


class TestObserverErrorNarrowing:
    """Regression: the sampling guard catches SimulationError only.

    It used to be a blanket ``except Exception``, which would have
    silently swallowed genuine engine bugs (AttributeError on a view,
    IndexError in an occupancy scan) as if the reference ball had
    merely crashed pre-initialization.
    """

    class _Simulation:
        def alive(self):
            return [7]

    class _UninitializedStore:
        def view_of(self, pid):
            raise SimulationError(f"ball {pid!r} has no initialized view")

    class _BuggyStore:
        def view_of(self, pid):
            raise RuntimeError("engine bug")

    def test_uninitialized_view_skips_the_sample(self):
        observer = TreeStatsObserver.__new__(TreeStatsObserver)
        observer._store = self._UninitializedStore()
        observer.phases = []
        observer(self._Simulation(), round_no=3)
        assert observer.phases == []

    def test_other_errors_propagate(self):
        observer = TreeStatsObserver.__new__(TreeStatsObserver)
        observer._store = self._BuggyStore()
        observer.phases = []
        with pytest.raises(RuntimeError, match="engine bug"):
            observer(self._Simulation(), round_no=3)
