"""Unit tests for the view stores."""

from __future__ import annotations

import pytest

from repro.core.messages import path_message, position_message
from repro.core.views import (
    PrivateViewStore,
    SharedViewStore,
    make_store,
)
from repro.errors import ConfigurationError, SimulationError
from repro.tree.topology import Topology


@pytest.fixture
def topo4():
    return Topology(4)


def hello_inbox(*pids):
    return {pid: ("hello",) for pid in pids}


class TestFactory:
    def test_make_faithful(self, topo4):
        assert isinstance(make_store("faithful", topo4), PrivateViewStore)

    def test_make_shared(self, topo4):
        assert isinstance(make_store("shared", topo4), SharedViewStore)

    def test_unknown_mode(self, topo4):
        with pytest.raises(ConfigurationError):
            make_store("psychic", topo4)


class TestPrivateStore:
    def test_views_are_independent(self, topo4):
        store = PrivateViewStore(topo4)
        store.initialize("a", 1, hello_inbox("a", "b"))
        store.initialize("b", 1, hello_inbox("a", "b"))
        assert store.view_of("a") is not store.view_of("b")
        assert store.view_of("a") == store.view_of("b")

    def test_uninitialized_view_raises(self, topo4):
        with pytest.raises(SimulationError):
            PrivateViewStore(topo4).view_of("nobody")

    def test_apply_paths_mutates_only_own_view(self, topo4):
        store = PrivateViewStore(topo4)
        for pid in ("a", "b"):
            store.initialize(pid, 1, hello_inbox("a", "b"))
        inbox = {
            "a": path_message(((0, 4), (0, 2), (0, 1))),
            "b": path_message(((0, 4), (2, 4), (2, 3))),
        }
        store.apply_paths("a", 2, inbox)
        assert store.view_of("a").position("a") == (0, 1)
        assert store.view_of("b").position("a") == (0, 4)  # untouched


class TestSharedStore:
    def test_same_inbox_shares_one_tree(self, topo4):
        store = SharedViewStore(topo4)
        inbox = hello_inbox("a", "b")
        store.initialize("a", 1, inbox)
        store.initialize("b", 1, inbox)
        assert store.view_of("a") is store.view_of("b")
        assert store.class_count() == 1

    def test_different_inboxes_split_classes(self, topo4):
        store = SharedViewStore(topo4)
        store.initialize("a", 1, hello_inbox("a", "b"))
        store.initialize("b", 1, hello_inbox("a", "b", "ghost"))
        assert store.view_of("a") is not store.view_of("b")
        assert store.class_count() == 2

    def test_classes_merge_when_states_reconverge(self, topo4):
        store = SharedViewStore(topo4)
        # Two classes that differ only in a ghost ball.
        store.initialize("a", 1, hello_inbox("a", "b"))
        store.initialize("b", 1, hello_inbox("a", "b", "ghost"))
        # The ghost never speaks again: after one path round both views
        # hold exactly {a, b} at the same nodes.
        inbox = {
            "a": path_message(((0, 4), (0, 2), (0, 1))),
            "b": path_message(((0, 4), (2, 4), (2, 3))),
        }
        store.apply_paths("a", 2, inbox)
        store.apply_paths("b", 2, inbox)
        assert store.view_of("a") is store.view_of("b")
        assert store.class_count() == 1

    def test_apply_positions_updates_shared_tree(self, topo4):
        store = SharedViewStore(topo4)
        inbox = hello_inbox("a", "b")
        store.initialize("a", 1, inbox)
        store.initialize("b", 1, inbox)
        pos_inbox = {
            "a": position_message((0, 1)),
            "b": position_message((1, 2)),
        }
        store.apply_positions("a", 2, pos_inbox)
        store.apply_positions("b", 2, pos_inbox)
        assert store.view_of("a").all_at_leaves()

    def test_uninitialized_apply_raises(self, topo4):
        store = SharedViewStore(topo4)
        with pytest.raises(SimulationError):
            store.apply_paths("nobody", 2, {})

    def test_memo_does_not_leak_across_rounds(self, topo4):
        store = SharedViewStore(topo4)
        inbox = hello_inbox("a")
        store.initialize("a", 1, inbox)
        # Same inbox object in a later round must be recomputed, not
        # replayed from the stale memo.
        path_inbox = {"a": path_message(((0, 4), (0, 2), (0, 1)))}
        store.apply_paths("a", 2, path_inbox)
        position = store.view_of("a").position("a")
        store.apply_positions("a", 3, {"a": position_message(position)})
        assert store.view_of("a").position("a") == (0, 1)
