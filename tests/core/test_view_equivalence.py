"""The shared-view engine must reproduce the faithful mode bit-for-bit.

This is the load-bearing validation for the S5 optimization in DESIGN.md:
every (algorithm, adversary, n, seed) combination must yield identical
round counts, name assignments, and crash sets in both modes.
"""

from __future__ import annotations

import pytest

from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.sandwich import SandwichAdversary
from repro.adversary.splitter import HalfSplitAdversary
from repro.adversary.targeted import TargetedPriorityAdversary
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming


def signature(run):
    return (
        run.rounds,
        tuple(sorted(run.names.items())),
        tuple(sorted(run.crashed, key=repr)),
    )


ADVERSARIES = {
    "none": lambda seed: None,
    "random": lambda seed: RandomCrashAdversary(0.15, seed=seed),
    "targeted": lambda seed: TargetedPriorityAdversary(seed=seed),
    "sandwich": lambda seed: SandwichAdversary(seed=seed),
    "halfsplit": lambda seed: HalfSplitAdversary(
        rounds=frozenset({1, 3, 5, 7}), seed=seed
    ),
}


class TestModeEquivalence:
    @pytest.mark.parametrize("adversary_name", sorted(ADVERSARIES))
    @pytest.mark.parametrize("n", [2, 7, 16, 33])
    def test_bil_modes_agree(self, n, adversary_name):
        factory = ADVERSARIES[adversary_name]
        runs = {}
        for mode in ("faithful", "shared"):
            runs[mode] = run_renaming(
                "balls-into-leaves",
                sparse_ids(n),
                seed=11,
                adversary=factory(11),
                view_mode=mode,
                check_invariants=True,
            )
        assert signature(runs["faithful"]) == signature(runs["shared"])

    @pytest.mark.parametrize("algorithm", ["early-terminating", "rank-descent"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_variant_modes_agree_under_crashes(self, algorithm, seed):
        factory = ADVERSARIES["random"]
        runs = {}
        for mode in ("faithful", "shared"):
            runs[mode] = run_renaming(
                algorithm,
                sparse_ids(24),
                seed=seed,
                adversary=factory(seed),
                view_mode=mode,
                check_invariants=True,
            )
        assert signature(runs["faithful"]) == signature(runs["shared"])

    def test_shared_mode_keeps_single_class_without_crashes(self):
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(32),
            seed=3,
            collect_phase_stats=True,
        )
        assert all(stats.view_classes == 1 for stats in run.phase_stats)

    def test_shared_mode_splits_classes_on_partial_delivery(self):
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(32),
            seed=3,
            adversary=HalfSplitAdversary(rounds=frozenset({2}), seed=3),
            collect_phase_stats=True,
        )
        assert any(stats.view_classes > 1 for stats in run.phase_stats)
