"""Tests for the per-ball termination extension (halt_on_name).

The paper: "It is easy to change the algorithm to allow a ball to
terminate as soon as it reaches a leaf.  Such modification requires
additional checks."  The additional check implemented here: silent balls
positioned at leaves are retained (their slot stays reserved); silent
balls at inner nodes are still purged as crashed.
"""

from __future__ import annotations

import pytest

from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.adversary.splitter import HalfSplitAdversary
from repro.core.config import BallsIntoLeavesConfig
from repro.core.messages import path_message
from repro.core.movement import apply_path_round
from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming
from repro.tree.local_view import LocalTreeView


class TestRetentionRule:
    def test_silent_leaf_ball_is_retained(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("done", (0, 1))
        view.insert("live", (0, 8))
        inbox = {"live": path_message(((0, 8), (0, 4), (0, 2), (0, 1)))}
        apply_path_round(view, inbox, retain_silent_leaf_balls=True)
        assert "done" in view  # retained: its name slot stays reserved
        assert view.position("live") != (0, 1)

    def test_silent_inner_ball_is_still_purged(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("crashed", (0, 2))
        view.insert("live", (0, 8))
        inbox = {"live": path_message(((0, 8), (0, 4), (0, 2), (0, 1)))}
        apply_path_round(view, inbox, retain_silent_leaf_balls=True)
        assert "crashed" not in view
        assert view.position("live") == (0, 1)

    def test_default_mode_removes_silent_leaf_balls(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("crashed-at-leaf", (0, 1))
        view.insert("live", (0, 8))
        inbox = {"live": path_message(((0, 8), (0, 4), (0, 2), (0, 1)))}
        apply_path_round(view, inbox)
        assert "crashed-at-leaf" not in view
        assert view.position("live") == (0, 1)


class TestEndToEnd:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BallsIntoLeavesConfig(halt_on_name=True, sync_positions=False)

    def test_same_names_as_standard_failure_free(self):
        ids = sparse_ids(32)
        standard = run_renaming("balls-into-leaves", ids, seed=4)
        halting = run_renaming("balls-into-leaves", ids, seed=4, halt_on_name=True)
        assert halting.names == standard.names
        assert halting.rounds == standard.rounds  # last ball unchanged

    def test_sends_fewer_messages(self):
        ids = sparse_ids(64)
        standard = run_renaming("balls-into-leaves", ids, seed=5)
        halting = run_renaming("balls-into-leaves", ids, seed=5, halt_on_name=True)
        assert (
            halting.metrics.total_messages_sent
            < standard.metrics.total_messages_sent
        )

    def test_balls_halt_at_different_rounds(self):
        from repro.core.balls_into_leaves import build_balls_into_leaves
        from repro.sim.simulator import Simulation

        config = BallsIntoLeavesConfig(halt_on_name=True)
        processes, _ = build_balls_into_leaves(sparse_ids(32), seed=6, config=config)
        Simulation(processes, max_rounds=200).run()
        halt_rounds = {proc.round_halted for proc in processes}
        assert len(halt_rounds) > 1  # staggered termination

    @pytest.mark.parametrize("seed", range(6))
    def test_correct_under_random_crashes(self, seed):
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(40),
            seed=seed,
            adversary=RandomCrashAdversary(0.12, seed=seed),
            halt_on_name=True,
            check_invariants=True,
        )
        assert len(set(run.names.values())) == len(run.names)

    @pytest.mark.parametrize("mode", ["faithful", "shared"])
    def test_correct_under_half_split(self, mode):
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(24),
            seed=3,
            adversary=HalfSplitAdversary(rounds=frozenset({1, 3, 5}), seed=3),
            halt_on_name=True,
            view_mode=mode,
        )
        assert len(set(run.names.values())) == len(run.names)

    def test_crashed_leaf_holder_wastes_its_slot_safely(self):
        """A ball that crashes right after claiming a leaf keeps the slot
        reserved in the views that saw it, yet everyone still renames."""
        ids = sparse_ids(8)
        # Crash a ball during a position round, reaching only some peers.
        schedule = [ScheduledCrash(3, ids[4], receivers=ids[:3])]
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=11,
            adversary=ScheduledAdversary(schedule),
            halt_on_name=True,
        )
        names = list(run.names.values())
        assert len(names) == 7
        assert len(set(names)) == 7

    def test_works_with_early_terminating_variant(self):
        run = run_renaming(
            "early-terminating", sparse_ids(64), seed=2, halt_on_name=True
        )
        assert run.rounds == 3
        assert sorted(run.names.values()) == list(range(64))

    @pytest.mark.xfail(
        reason="known latent liveness bug (pre-dates the kernel refactor): a "
        "ball that crashes mid-path-broadcast can be simulated onto a leaf in "
        "a partial receiver's view and then retained as a 'terminated' holder "
        "by the silent-at-leaf rule, reserving the one leaf that receiver "
        "needs — it then loops forever with no capacity below its node. "
        "Discovered by hypothesis (test_spec_under_arbitrary_crashes); the "
        "retention rule needs to distinguish announced leaf positions from "
        "path-simulated ghost positions. See ROADMAP open items.",
        raises=RoundLimitExceeded,
        strict=True,
    )
    def test_mid_path_crash_ghost_must_not_reserve_a_survivors_leaf(self):
        ids = sparse_ids(9)
        schedule = [ScheduledCrash(2, ids[0], receivers=[ids[1]])]
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=1,
            adversary=ScheduledAdversary(schedule),
            halt_on_name=True,
        )
        assert sorted(run.names.values()) == sorted(set(run.names.values()))
