"""Tests for the per-ball termination extension (halt_on_name).

The paper: "It is easy to change the algorithm to allow a ball to
terminate as soon as it reaches a leaf.  Such modification requires
additional checks."  The additional check implemented here is the
*announced-termination* lifecycle rule (``repro.core.lifecycle``): a
silent ball is retained — its name slot stays reserved — only while its
status is ``ANNOUNCED``, i.e. only if the ball itself broadcast the leaf
position it occupies.  Balls a view merely *simulated* onto a leaf from a
candidate path stay ``ACTIVE`` and are purged on silence like any other
crash; retaining them (the old silence-at-leaf inference) deadlocked the
survivor whose free leaf the ghost reserved.
"""

from __future__ import annotations

import pytest

from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.adversary.splitter import HalfSplitAdversary
from repro.core.config import BallsIntoLeavesConfig
from repro.core.lifecycle import BallStatus
from repro.core.messages import hello_message, path_message, position_message
from repro.core.movement import (
    apply_path_round,
    apply_position_round,
    assert_capacity_invariant,
)
from repro.core.views import SharedViewStore, make_store
from repro.errors import ConfigurationError, SimulationError
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming
from repro.tree.local_view import LocalTreeView

PATH_TO_LEAF0 = ((0, 8), (0, 4), (0, 2), (0, 1))


class TestRetentionRule:
    """Unit semantics of announced-only retention on a single view."""

    def test_announced_leaf_ball_is_retained(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("done", (0, 1))
        view.set_status("done", BallStatus.ANNOUNCED)
        view.insert("live", (0, 8))
        inbox = {"live": path_message(PATH_TO_LEAF0)}
        apply_path_round(view, inbox, lifecycle=True)
        assert "done" in view  # retained: its name slot stays reserved
        assert view.position("live") != (0, 1)

    def test_path_simulated_leaf_ball_is_purged(self, topo8):
        """The ghost fix: a leaf position this view only *simulated* from
        a candidate path is not retention-eligible — silence means crash."""
        view = LocalTreeView(topo8)
        view.insert("ghost", (0, 8))
        view.insert("live", (0, 8))
        # Path round: the ghost's path is delivered, it descends to the
        # leaf — but crashes before ever announcing the position.
        inbox = {
            "ghost": path_message(PATH_TO_LEAF0),
            "live": path_message(((0, 8), (4, 8), (4, 6), (4, 5))),
        }
        apply_path_round(view, inbox, lifecycle=True)
        assert view.position("ghost") == (0, 1)
        assert view.status("ghost") == BallStatus.ACTIVE
        # Position round: the ghost is silent.  It must be purged, not
        # retained as a terminated holder.
        apply_position_round(
            view, {"live": position_message((4, 5))}, lifecycle=True
        )
        assert "ghost" not in view

    def test_leaf_announcement_marks_ball_announced(self, topo8):
        view = LocalTreeView(topo8, ["a", "b"])
        inbox = {"a": position_message((0, 1)), "b": position_message((0, 8))}
        apply_position_round(view, inbox, lifecycle=True)
        assert view.status("a") == BallStatus.ANNOUNCED  # leaf announced
        assert view.status("b") == BallStatus.ACTIVE  # inner position

    def test_silent_inner_ball_is_still_purged(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("crashed", (0, 2))
        view.insert("live", (0, 8))
        inbox = {"live": path_message(PATH_TO_LEAF0)}
        apply_path_round(view, inbox, lifecycle=True)
        assert "crashed" not in view
        assert view.position("live") == (0, 1)

    def test_default_mode_removes_silent_leaf_balls(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("crashed-at-leaf", (0, 1))
        view.insert("live", (0, 8))
        inbox = {"live": path_message(PATH_TO_LEAF0)}
        apply_path_round(view, inbox)
        assert "crashed-at-leaf" not in view
        assert view.position("live") == (0, 1)

    def test_retention_survives_repeated_silence(self, topo8):
        """An announced terminator stays through every later round."""
        view = LocalTreeView(topo8, ["t", "live"])
        apply_position_round(
            view,
            {"t": position_message((0, 1)), "live": position_message((0, 8))},
            lifecycle=True,
        )
        for round_kind in ("path", "pos", "path", "pos"):
            if round_kind == "path":
                apply_path_round(
                    view, {"live": path_message(((0, 8), (4, 8)))}, lifecycle=True
                )
            else:
                apply_position_round(
                    view, {"live": position_message((4, 8))}, lifecycle=True
                )
            assert "t" in view
            assert view.status("t") == BallStatus.ANNOUNCED


@pytest.fixture(params=["faithful", "shared"])
def lifecycle_stores(request, topo8):
    """One lifecycle-enabled view store per mode (satellite: the two
    stores must agree on lifecycle semantics, including partial
    delivery)."""
    return request.param, make_store(request.param, topo8, lifecycle=True)


class TestRetentionAcrossStores:
    """The same lifecycle scenario driven through both view stores.

    Receivers ``a`` and ``b`` watch ball ``c`` terminate; ``c``'s leaf
    announcement is delivered only to ``a`` (a crash mid-broadcast).
    Both stores must retain the announced holder in ``a``'s view and
    purge the never-announced ball from ``b``'s view.
    """

    IDS = ("a", "b", "c")

    def _drive_partial_announcement(self, store):
        hello = {pid: hello_message() for pid in self.IDS}
        for pid in ("a", "b"):
            store.initialize(pid, 1, hello)
        paths = {
            "a": path_message(((0, 8), (4, 8), (4, 6), (4, 5))),
            "b": path_message(((0, 8), (4, 8), (6, 8), (6, 7))),
            "c": path_message(PATH_TO_LEAF0),
        }
        for pid in ("a", "b"):
            store.apply_paths(pid, 2, paths)
        # Position round: c announces its leaf but the broadcast reaches
        # only a (crash mid-broadcast).
        base = {"a": position_message((4, 5)), "b": position_message((6, 7))}
        inbox_a = dict(base)
        inbox_a["c"] = position_message((0, 1))
        store.apply_positions("a", 3, inbox_a)
        store.apply_positions("b", 3, dict(base))

    def test_partial_announcement_retains_only_where_heard(self, lifecycle_stores):
        _, store = lifecycle_stores
        self._drive_partial_announcement(store)
        view_a = store.view_of("a")
        view_b = store.view_of("b")
        assert "c" in view_a and view_a.status("c") == BallStatus.ANNOUNCED
        assert "c" not in view_b

    def test_retained_holder_survives_later_rounds(self, lifecycle_stores):
        _, store = lifecycle_stores
        self._drive_partial_announcement(store)
        paths4 = {
            "a": path_message(((4, 5),)),
            "b": path_message(((6, 7),)),
        }
        for pid in ("a", "b"):
            store.apply_paths(pid, 4, paths4)
        view_a = store.view_of("a")
        assert "c" in view_a  # ANNOUNCED: silence is expected, slot reserved
        assert view_a.position("c") == (0, 1)
        assert "c" not in store.view_of("b")

    def test_mid_path_crash_ghost_purged_in_both_stores(self, lifecycle_stores):
        """The deadlock scenario at store level: c's *path* reaches only
        a; the simulated leaf position must not be retained anywhere."""
        _, store = lifecycle_stores
        hello = {pid: hello_message() for pid in self.IDS}
        for pid in ("a", "b"):
            store.initialize(pid, 1, hello)
        paths = {
            "a": path_message(((0, 8), (4, 8), (4, 6), (4, 5))),
            "b": path_message(((0, 8), (4, 8), (6, 8), (6, 7))),
        }
        inbox_a = dict(paths)
        inbox_a["c"] = path_message(PATH_TO_LEAF0)  # partial: only a hears
        store.apply_paths("a", 2, inbox_a)
        store.apply_paths("b", 2, paths)
        assert store.view_of("a").position("c") == (0, 1)  # simulated ghost
        positions = {"a": position_message((4, 5)), "b": position_message((6, 7))}
        for pid in ("a", "b"):
            store.apply_positions(pid, 3, positions)
        assert "c" not in store.view_of("a")  # ACTIVE + silent -> purged
        assert "c" not in store.view_of("b")

    def test_shared_store_splits_classes_on_partial_announcement(self, topo8):
        store = make_store("shared", topo8, lifecycle=True)
        self_driver = TestRetentionAcrossStores()
        self_driver._drive_partial_announcement(store)
        assert isinstance(store, SharedViewStore)
        assert store.class_count() == 2  # a's view retains c, b's does not


class TestGhostOverflowAccounting:
    """Satellite: ghost-overflow headroom applies to announced
    terminators only — never to path-simulated (ACTIVE) ghosts."""

    def test_announced_holder_plus_owner_is_tolerated(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("ghost", (0, 1))
        view.set_status("ghost", BallStatus.ANNOUNCED)
        view.insert("owner", (0, 1))  # the leaf's legitimate claimant
        assert_capacity_invariant(view)  # headroom: exactly one announced

    def test_two_active_balls_on_a_leaf_still_raise(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("a", (0, 1))
        view.insert("b", (0, 1))
        with pytest.raises(SimulationError):
            assert_capacity_invariant(view)

    def test_active_ghost_grants_no_subtree_headroom(self, topo8):
        view = LocalTreeView(topo8)
        for i, node in enumerate([(0, 1), (1, 2), (0, 2)]):
            view.insert(f"b{i}", node)  # 3 balls in a 2-leaf subtree
        with pytest.raises(SimulationError):
            assert_capacity_invariant(view)

    def test_announced_ghost_grants_exactly_its_own_headroom(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("t", (0, 1))
        view.set_status("t", BallStatus.ANNOUNCED)
        view.insert("x", (1, 2))
        view.insert("y", (0, 2))  # 3 balls, 2 leaves, 1 announced: ok
        assert_capacity_invariant(view)
        view.insert("z", (0, 2))  # 4 balls, 2 leaves, 1 announced: overflow
        with pytest.raises(SimulationError):
            assert_capacity_invariant(view)

    def test_path_round_check_is_no_longer_a_blanket_waiver(self, topo8):
        """With lifecycle on, check_invariants after a path round must
        still catch overfilled subtrees of ACTIVE balls."""
        view = LocalTreeView(topo8)
        view.insert("a", (0, 1))
        view.insert("b", (1, 2))
        view.insert("c", (0, 2))  # over-filled 2-leaf subtree, all ACTIVE
        inbox = {
            "a": path_message(((0, 1),)),
            "b": path_message(((1, 2),)),
            "c": path_message(((0, 2),)),
        }
        with pytest.raises(SimulationError):
            apply_path_round(view, inbox, lifecycle=True, check_invariants=True)


class TestGhostDeadlockRegression:
    """Pinned repros of the mid-path-crash ghost deadlock.

    Each case deadlocked (``RoundLimitExceeded``) under the old
    silence-at-leaf rule: the victim crashes while broadcasting its
    candidate *path* in round 2, the partial receiver simulates it onto
    a leaf, and the ghost then reserved the one leaf that receiver
    needed.  The n=9 case is the original hypothesis find; the others
    were mined from the same generator's (n, seed, receivers) space.
    """

    CASES = [
        # (n, seed, victim index, receiver indices)
        pytest.param(9, 1, 0, [1], id="n9-original-hypothesis-find"),
        pytest.param(5, 1, 0, [1], id="n5-smallest"),
        pytest.param(7, 5, 1, [2, 4], id="n7-two-receivers"),
        pytest.param(13, 5, 2, [1, 3], id="n13-later-victim"),
    ]

    @pytest.mark.parametrize("n,seed,victim,receivers", CASES)
    @pytest.mark.parametrize("mode", ["faithful", "shared"])
    def test_mid_path_crash_ghost_must_not_reserve_a_survivors_leaf(
        self, n, seed, victim, receivers, mode
    ):
        ids = sparse_ids(n)
        schedule = [
            ScheduledCrash(2, ids[victim], receivers=[ids[r] for r in receivers])
        ]
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=seed,
            adversary=ScheduledAdversary(schedule),
            halt_on_name=True,
            view_mode=mode,
            check_invariants=True,
        )
        names = list(run.names.values())
        assert len(names) == n - 1
        assert len(set(names)) == n - 1


class TestEndToEnd:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BallsIntoLeavesConfig(halt_on_name=True, sync_positions=False)

    def test_same_names_as_standard_failure_free(self):
        ids = sparse_ids(32)
        standard = run_renaming("balls-into-leaves", ids, seed=4)
        halting = run_renaming("balls-into-leaves", ids, seed=4, halt_on_name=True)
        assert halting.names == standard.names
        assert halting.rounds == standard.rounds  # last ball unchanged

    def test_sends_fewer_messages(self):
        ids = sparse_ids(64)
        standard = run_renaming("balls-into-leaves", ids, seed=5)
        halting = run_renaming("balls-into-leaves", ids, seed=5, halt_on_name=True)
        assert (
            halting.metrics.total_messages_sent
            < standard.metrics.total_messages_sent
        )

    def test_balls_halt_at_different_rounds(self):
        from repro.core.balls_into_leaves import build_balls_into_leaves
        from repro.sim.simulator import Simulation

        config = BallsIntoLeavesConfig(halt_on_name=True)
        processes, _ = build_balls_into_leaves(sparse_ids(32), seed=6, config=config)
        Simulation(processes, max_rounds=200).run()
        halt_rounds = {proc.round_halted for proc in processes}
        assert len(halt_rounds) > 1  # staggered termination

    @pytest.mark.parametrize("seed", range(6))
    def test_correct_under_random_crashes(self, seed):
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(40),
            seed=seed,
            adversary=RandomCrashAdversary(0.12, seed=seed),
            halt_on_name=True,
            check_invariants=True,
        )
        assert len(set(run.names.values())) == len(run.names)

    @pytest.mark.parametrize("mode", ["faithful", "shared"])
    def test_correct_under_half_split(self, mode):
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(24),
            seed=3,
            adversary=HalfSplitAdversary(rounds=frozenset({1, 3, 5}), seed=3),
            halt_on_name=True,
            view_mode=mode,
        )
        assert len(set(run.names.values())) == len(run.names)

    def test_crashed_leaf_holder_wastes_its_slot_safely(self):
        """A ball that crashes right after claiming a leaf keeps the slot
        reserved in the views that saw it, yet everyone still renames."""
        ids = sparse_ids(8)
        # Crash a ball during a position round, reaching only some peers.
        schedule = [ScheduledCrash(3, ids[4], receivers=ids[:3])]
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=11,
            adversary=ScheduledAdversary(schedule),
            halt_on_name=True,
        )
        names = list(run.names.values())
        assert len(names) == 7
        assert len(set(names)) == 7

    def test_works_with_early_terminating_variant(self):
        run = run_renaming(
            "early-terminating", sparse_ids(64), seed=2, halt_on_name=True
        )
        assert run.rounds == 3
        assert sorted(run.names.values()) == list(range(64))
