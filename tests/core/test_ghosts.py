"""Ghost-ball scenarios: crashed balls lingering in some views.

DESIGN.md section 3 documents the ghost interpretation; these tests pin
the behaviour: ghosts may transiently over-fill subtrees in a view, are
purged before lower-priority live balls move, and never break uniqueness.
"""

from __future__ import annotations

from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.core.messages import path_message, position_message
from repro.core.movement import apply_path_round, apply_position_round
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming
from repro.tree.local_view import LocalTreeView


class TestGhostPurgeOrder:
    def test_deep_ghost_removed_before_shallow_mover(self, topo8):
        """<R order processes the deeper (silent) ghost first, freeing its
        capacity for live balls in the same round."""
        view = LocalTreeView(topo8)
        view.insert("ghost", (0, 1))
        view.insert("ghost2", (1, 2))
        view.insert("live", (0, 8))
        inbox = {"live": path_message(((0, 8), (0, 4), (0, 2), (0, 1)))}
        apply_path_round(view, inbox)
        assert view.balls() == ["live"]
        assert view.position("live") == (0, 1)

    def test_same_depth_larger_label_ghost_is_conservative(self, topo8):
        """A ghost ordered after the mover blocks capacity this phase only."""
        view = LocalTreeView(topo8)
        view.insert("z-ghost", (0, 2))  # same depth processed after 'a'? no:
        # depth((0,2)) = 2 > depth(root): ghost is deeper, still first.
        view.insert("a", (0, 8))
        inbox = {"a": path_message(((0, 8), (0, 4), (0, 2), (0, 1)))}
        apply_path_round(view, inbox)
        assert view.position("a") == (0, 1)

    def test_ghost_position_adoption_then_purge(self, topo8):
        """Round 2 adopts a ghost's position; next path round purges it."""
        view = LocalTreeView(topo8, ["g", "live"])
        apply_position_round(
            view, {"g": position_message((0, 1)), "live": position_message((0, 8))}
        )
        assert view.position("g") == (0, 1)
        # Next phase: the ghost is silent and vanishes before 'live' moves.
        apply_path_round(
            view, {"live": path_message(((0, 8), (0, 4), (0, 2), (0, 1)))}
        )
        assert "g" not in view
        assert view.position("live") == (0, 1)


class TestGhostEndToEnd:
    def test_round2_partial_crash_keeps_uniqueness(self):
        """A ball crashing mid-position-broadcast haunts half the views."""
        ids = sparse_ids(8)
        schedule = [ScheduledCrash(3, ids[2], receivers=ids[0:4])]
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=13,
            adversary=ScheduledAdversary(schedule),
            check_invariants=True,
            view_mode="faithful",
        )
        names = list(run.names.values())
        assert len(names) == 7
        assert len(set(names)) == 7

    def test_repeated_round2_crashes(self):
        ids = sparse_ids(10)
        schedule = [
            ScheduledCrash(3, ids[1], receivers=ids[5:]),
            ScheduledCrash(5, ids[2], receivers=ids[:3]),
            ScheduledCrash(7, ids[3], receivers=ids[7:9]),
        ]
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=21,
            adversary=ScheduledAdversary(schedule),
            check_invariants=True,
            view_mode="faithful",
        )
        assert len(set(run.names.values())) == len(run.names)
