"""Unit tests for the movement rule (Algorithm 1 lines 12-28)."""

from __future__ import annotations

import pytest

from repro.core.messages import path_message, position_message
from repro.core.movement import (
    apply_path_round,
    apply_position_round,
    assert_capacity_invariant,
)
from repro.errors import SimulationError
from repro.tree.local_view import LocalTreeView
from repro.tree.topology import Topology


def paths_inbox(**paths):
    return {ball: path_message(tuple(path)) for ball, path in paths.items()}


class TestPathRound:
    def test_single_ball_descends_to_leaf(self, topo8):
        view = LocalTreeView(topo8, ["a"])
        inbox = paths_inbox(a=[(0, 8), (0, 4), (0, 2), (0, 1)])
        apply_path_round(view, inbox)
        assert view.position("a") == (0, 1)

    def test_collision_stops_just_above_full_subtree(self, topo8):
        """The Figure 2a semantics: losers stop above the full subtree."""
        view = LocalTreeView(topo8, ["a", "b"])
        path = [(0, 8), (0, 4), (0, 2), (0, 1)]
        apply_path_round(view, paths_inbox(a=path, b=path))
        assert view.position("a") == (0, 1)  # smaller label wins the leaf
        assert view.position("b") == (0, 2)  # stops at the leaf's parent

    def test_pileup_counts(self, topo8):
        """All 8 balls to leaf 0 reproduces the Figure 2a stacking."""
        view = LocalTreeView(topo8, list(range(8)))
        path = [(0, 8), (0, 4), (0, 2), (0, 1)]
        inbox = {ball: path_message(tuple(path)) for ball in range(8)}
        apply_path_round(view, inbox)
        assert view.occupancy((0, 1)) == 1
        assert view.occupancy((0, 2)) == 1
        assert view.occupancy((0, 4)) == 2  # capacity 4, minus leaf + parent
        assert view.occupancy((0, 8)) == 4
        assert_capacity_invariant(view)

    def test_priority_order_deeper_first(self, topo8):
        """A deeper ball moves before a shallower one with a smaller label."""
        view = LocalTreeView(topo8)
        view.insert(9, (0, 2))  # deep, large label
        view.insert(1, (0, 8))  # shallow, small label
        inbox = paths_inbox(**{})
        inbox[9] = path_message(((0, 2), (0, 1)))
        inbox[1] = path_message(((0, 8), (0, 4), (0, 2), (0, 1)))
        apply_path_round(view, inbox)
        assert view.position(9) == (0, 1)  # deeper ball won the leaf
        assert view.position(1) == (0, 2)

    def test_silent_ball_is_removed(self, topo8):
        view = LocalTreeView(topo8, ["a", "b"])
        apply_path_round(view, paths_inbox(a=[(0, 8), (4, 8), (4, 6), (4, 5)]))
        assert "b" not in view
        assert view.position("a") == (4, 5)

    def test_removal_frees_capacity_for_later_balls(self, topo8):
        """A crashed deep ball is purged before shallower balls move."""
        view = LocalTreeView(topo8)
        view.insert("ghost", (0, 1))  # will be silent
        view.insert("mover", (0, 8))
        inbox = paths_inbox(mover=[(0, 8), (0, 4), (0, 2), (0, 1)])
        apply_path_round(view, inbox)
        assert "ghost" not in view
        assert view.position("mover") == (0, 1)

    def test_ball_at_leaf_stays(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("settled", (3, 4))
        apply_path_round(view, paths_inbox(settled=[(3, 4)]))
        assert view.position("settled") == (3, 4)

    def test_path_not_containing_position_keeps_ball(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("weird", (4, 8))
        # Stale path starting at the root (not at the recorded position).
        apply_path_round(view, paths_inbox(weird=[(0, 8), (0, 4)]))
        assert view.position("weird") == (4, 8)

    def test_non_path_payload_counts_as_silent(self, topo8):
        view = LocalTreeView(topo8, ["a"])
        apply_path_round(view, {"a": ("pos", (0, 8))})
        assert "a" not in view


class TestPositionRound:
    def test_positions_adopted(self, topo8):
        view = LocalTreeView(topo8, ["a", "b"])
        inbox = {
            "a": position_message((0, 1)),
            "b": position_message((4, 8)),
        }
        apply_position_round(view, inbox)
        assert view.position("a") == (0, 1)
        assert view.position("b") == (4, 8)

    def test_silent_ball_removed(self, topo8):
        view = LocalTreeView(topo8, ["a", "b"])
        apply_position_round(view, {"a": position_message((0, 8))})
        assert "b" not in view

    def test_ghost_overflow_is_tolerated(self, topo8):
        """Round-2 adoption may transiently over-fill a subtree."""
        view = LocalTreeView(topo8)
        view.insert("g1", (0, 1))
        view.insert("g2", (0, 8))
        inbox = {
            "g1": position_message((0, 1)),
            "g2": position_message((0, 1)),  # claims the same leaf
        }
        apply_position_round(view, inbox, check_invariants=True)
        assert view.occupancy((0, 1)) == 2  # tolerated; purged next phase


class TestInvariantChecker:
    def test_detects_subtree_overflow(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("a", (0, 1))
        view.insert("b", (0, 1))
        with pytest.raises(SimulationError):
            assert_capacity_invariant(view)

    def test_detects_too_many_balls(self, topo8):
        view = LocalTreeView(topo8, range(8))
        view.insert("extra", (0, 8))
        with pytest.raises(SimulationError):
            assert_capacity_invariant(view, allow_ghost_overflow=True)

    def test_passes_on_consistent_view(self, view8):
        assert_capacity_invariant(view8)
