"""Tests for the ablation variants (EXP-ABL's machinery).

The ablated algorithms are part of the library surface (they document the
design), so their contracts are tested: the liveness ablations stay
correct but slower; the safety ablation demonstrably breaks under crashes
while remaining correct failure-free.
"""

from __future__ import annotations

import pytest

from repro.adversary.splitter import HalfSplitAdversary
from repro.core.balls_into_leaves import build_balls_into_leaves
from repro.core.config import BallsIntoLeavesConfig
from repro.core.policies import UnweightedRandomPolicy, make_policy
from repro.errors import ConfigurationError, RoundLimitExceeded, SpecViolation
from repro.ids import sparse_ids
from repro.sim.checker import RenamingSpec, check_renaming
from repro.sim.simulator import Simulation


def run_config(config, n=32, seed=1, adversary=None, max_rounds=None):
    processes, _ = build_balls_into_leaves(sparse_ids(n), seed=seed, config=config)
    simulation = Simulation(
        processes, adversary=adversary, max_rounds=max_rounds or (6 * n + 32)
    )
    result = simulation.run()
    return result, simulation


class TestConfigValidation:
    def test_rejects_unknown_movement_order(self):
        with pytest.raises(ConfigurationError):
            BallsIntoLeavesConfig(movement_order="chaotic")

    def test_unweighted_policy_registered(self):
        assert isinstance(make_policy("random-unweighted"), UnweightedRandomPolicy)

    def test_with_policy_preserves_ablation_flags(self):
        config = BallsIntoLeavesConfig(movement_order="label", sync_positions=False)
        copy = config.with_policy("rank")
        assert copy.movement_order == "label"
        assert not copy.sync_positions


class TestFairCoins:
    def test_correct_failure_free(self):
        config = BallsIntoLeavesConfig(path_policy="random-unweighted")
        result, _ = run_config(config)
        check_renaming(result, RenamingSpec(n=32))

    def test_correct_under_crashes(self):
        config = BallsIntoLeavesConfig(path_policy="random-unweighted")
        adversary = HalfSplitAdversary(rounds=frozenset({1, 3, 5}), seed=1)
        result, _ = run_config(config, adversary=adversary)
        check_renaming(result, RenamingSpec(n=32))

    def test_unweighted_never_enters_full_subtree_when_alternative(self):
        import random

        from repro.tree import node as nd
        from repro.tree.local_view import LocalTreeView
        from repro.tree.topology import Topology

        topo = Topology(8)
        view = LocalTreeView(topo, ["mover"])
        for rank in range(4):
            view.insert(f"s{rank}", nd.leaf_node(rank))
        policy = UnweightedRandomPolicy()
        for seed in range(20):
            path = policy.choose(view, "mover", 1, random.Random(seed))
            assert path[1] == (4, 8)


class TestLabelOrder:
    def test_correct_failure_free(self):
        config = BallsIntoLeavesConfig(movement_order="label")
        result, _ = run_config(config)
        check_renaming(result, RenamingSpec(n=32))

    def test_correct_under_crashes(self):
        config = BallsIntoLeavesConfig(movement_order="label")
        adversary = HalfSplitAdversary(rounds=frozenset({1, 3, 5, 7}), seed=2)
        result, _ = run_config(config, adversary=adversary)
        check_renaming(result, RenamingSpec(n=32))


class TestNoResync:
    def test_correct_and_faster_failure_free(self):
        full, _ = run_config(BallsIntoLeavesConfig(), seed=3)
        ablated, _ = run_config(BallsIntoLeavesConfig(sync_positions=False), seed=3)
        check_renaming(ablated, RenamingSpec(n=32))
        assert ablated.rounds < full.rounds  # one-round phases

    def test_breaks_under_crashes_somewhere(self):
        """Across seeds, skipping round 2 must eventually fail the spec."""
        config = BallsIntoLeavesConfig(sync_positions=False)
        failures = 0
        for seed in range(8):
            adversary = HalfSplitAdversary(
                rounds=frozenset({1} | set(range(2, 40))), max_crashes=8, seed=seed
            )
            try:
                result, _ = run_config(
                    config, n=32, seed=seed, adversary=adversary, max_rounds=100
                )
                check_renaming(result, RenamingSpec(n=32))
            except (SpecViolation, RoundLimitExceeded):
                failures += 1
        assert failures > 0

    def test_full_algorithm_survives_same_schedules(self):
        config = BallsIntoLeavesConfig()
        for seed in range(8):
            adversary = HalfSplitAdversary(
                rounds=frozenset({1} | set(range(2, 40))), max_crashes=8, seed=seed
            )
            result, _ = run_config(config, n=32, seed=seed, adversary=adversary)
            check_renaming(result, RenamingSpec(n=32))
