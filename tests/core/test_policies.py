"""Unit tests for the path policies."""

from __future__ import annotations

import random

import pytest

from repro.core.config import BallsIntoLeavesConfig
from repro.core.policies import (
    HybridRankThenRandomPolicy,
    LeftmostPolicy,
    RandomPolicy,
    RankPolicy,
    make_policy,
    rank_among_all,
    rank_at_node,
)
from repro.errors import ConfigurationError
from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("random", RandomPolicy),
            ("hybrid", HybridRankThenRandomPolicy),
            ("rank", RankPolicy),
            ("leftmost", LeftmostPolicy),
        ],
    )
    def test_known_policies(self, name, cls):
        assert isinstance(make_policy(name), cls)
        assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_policy("oracle")

    def test_config_validates_policy(self):
        with pytest.raises(ConfigurationError):
            BallsIntoLeavesConfig(path_policy="oracle")
        with pytest.raises(ConfigurationError):
            BallsIntoLeavesConfig(view_mode="telepathic")

    def test_config_with_policy(self):
        config = BallsIntoLeavesConfig().with_policy("rank")
        assert config.path_policy == "rank"


class TestRanks:
    def test_rank_among_all(self, topo8):
        view = LocalTreeView(topo8, [30, 10, 20])
        assert rank_among_all(view, 10) == 0
        assert rank_among_all(view, 20) == 1
        assert rank_among_all(view, 30) == 2

    def test_rank_at_node_only_counts_cohabitants(self, topo8):
        view = LocalTreeView(topo8, [30, 10])
        view.insert(20, (0, 4))
        assert rank_at_node(view, 30) == 1  # only 10 and 30 at the root
        assert rank_at_node(view, 20) == 0


class TestHybridPolicy:
    def test_phase1_targets_label_rank(self, topo8):
        view = LocalTreeView(topo8, [300, 100, 200])
        policy = HybridRankThenRandomPolicy()
        rng = random.Random(0)
        assert policy.choose(view, 100, 1, rng)[-1] == (0, 1)
        assert policy.choose(view, 200, 1, rng)[-1] == (1, 2)
        assert policy.choose(view, 300, 1, rng)[-1] == (2, 3)

    def test_phase1_is_collision_free_for_full_population(self, topo8):
        view = LocalTreeView(topo8, range(8))
        policy = HybridRankThenRandomPolicy()
        rng = random.Random(0)
        targets = {policy.choose(view, b, 1, rng)[-1] for b in range(8)}
        assert len(targets) == 8

    def test_later_phases_are_random(self, topo8):
        view = LocalTreeView(topo8, range(4))
        policy = HybridRankThenRandomPolicy()
        targets = {
            policy.choose(view, 0, 2, random.Random(seed))[-1] for seed in range(30)
        }
        assert len(targets) > 1  # randomized, not pinned to the rank leaf

    def test_rank_clamped_to_subtree(self):
        from repro.tree.topology import Topology

        topo = Topology(2)
        view = LocalTreeView(topo, [1, 2, 3])  # ghosts: more balls than leaves
        policy = HybridRankThenRandomPolicy()
        path = policy.choose(view, 3, 1, random.Random(0))
        assert nd.is_leaf(path[-1])  # clamped instead of raising


class TestRankPolicy:
    def test_targets_kth_free_leaf(self, topo8):
        view = LocalTreeView(topo8, [10, 20])
        view.insert("settled", (0, 1))
        policy = RankPolicy()
        rng = random.Random(0)
        assert policy.choose(view, 10, 1, rng)[-1] == (1, 2)
        assert policy.choose(view, 20, 1, rng)[-1] == (2, 3)

    def test_at_leaf_stays(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("a", (5, 6))
        assert RankPolicy().choose(view, "a", 3, random.Random(0)) == ((5, 6),)

    def test_no_free_leaf_stays_put(self):
        from repro.tree.topology import Topology

        topo = Topology(2)
        view = LocalTreeView(topo, ["x"])
        view.insert("l0", (0, 1))
        view.insert("l1", (1, 2))
        assert RankPolicy().choose(view, "x", 2, random.Random(0)) == (topo.root,)


class TestLeftmostPolicy:
    def test_targets_leftmost_free_leaf(self, topo8):
        view = LocalTreeView(topo8, ["a"])
        view.insert("s", (0, 1))
        path = LeftmostPolicy().choose(view, "a", 1, random.Random(0))
        assert path[-1] == (1, 2)


class TestRandomPolicyDistribution:
    def test_uniform_over_free_leaves_from_root(self, topo8):
        view = LocalTreeView(topo8, ["a"])
        counts = {}
        for seed in range(800):
            path = RandomPolicy().choose(view, "a", 1, random.Random(seed))
            counts[path[-1]] = counts.get(path[-1], 0) + 1
        assert len(counts) == 8
        assert max(counts.values()) < 3 * min(counts.values())
