"""Word-exactness of the lane SHA-256 against ``hashlib``.

The vectorized seed derivation rests on :mod:`repro.core.sha256`
producing the *identical* digest words ``hashlib.sha256`` does for every
single-block message — these tests pin that across message lengths
(empty through the 55-byte maximum), content classes (binary, ASCII,
non-ASCII UTF-8), and the exact message shapes
:func:`repro.core.vectorized.derive_ball_seeds` builds (edge seeds,
max-length labels).
"""

import hashlib

import pytest

from repro.core import sha256
from repro.sim.rng import derive_seed

np = pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    not sha256.HAVE_NUMPY, reason="lane SHA-256 requires numpy"
)


def _reference_words(message: bytes):
    digest = hashlib.sha256(message).digest()
    return [
        int.from_bytes(digest[i : i + 4], "big") for i in range(0, 32, 4)
    ]


def _reference_first8(message: bytes) -> int:
    return int.from_bytes(hashlib.sha256(message).digest()[:8], "big")


class TestCompressBlocks:
    def test_word_exact_for_every_single_block_length(self):
        messages = [bytes(range(length)) for length in range(56)]
        blocks = sha256.pack_messages(messages)
        state = sha256.compress_blocks(blocks)
        for row, message in enumerate(messages):
            assert state[row].tolist() == _reference_words(message), (
                f"digest mismatch at message length {len(message)}"
            )

    def test_word_exact_on_content_classes(self):
        messages = [
            b"",
            b"abc",
            b"a" * 55,
            bytes([0x80] * 55),
            bytes([0xFF] * 32),
            "héllo wörld ⊕".encode("utf-8"),
            b"\x00" * 55,
            repr((123456789, "'ball'", "'p31'")).encode("utf-8"),
        ]
        state = sha256.compress_blocks(sha256.pack_messages(messages))
        for row, message in enumerate(messages):
            assert state[row].tolist() == _reference_words(message)

    def test_pack_rejects_oversize_messages(self):
        assert sha256.pack_messages([b"x" * 56]) is None
        assert sha256.pack_messages([b"", b"y" * 200]) is None


class TestDigestFirst8:
    def test_matches_hashlib_above_and_below_the_lane_cutoff(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHA256_LANES", "on")
        batch = [b"message %d" % i for i in range(sha256.MIN_LANES + 8)]
        small = batch[:4]
        for messages in (batch, small):
            assert sha256.digest_first8(messages) == [
                _reference_first8(m) for m in messages
            ]

    def test_oversize_messages_fall_back_to_hashlib(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHA256_LANES", "on")
        messages = [b"z" * 80] * (sha256.MIN_LANES + 1)
        assert sha256.digest_first8(messages) == [
            _reference_first8(m) for m in messages
        ]

    def test_lane_gate_modes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHA256_LANES", "on")
        assert sha256.use_lanes(sha256.MIN_LANES)
        assert not sha256.use_lanes(sha256.MIN_LANES - 1)
        monkeypatch.setenv("REPRO_SHA256_LANES", "off")
        assert not sha256.use_lanes(1 << 20)
        monkeypatch.delenv("REPRO_SHA256_LANES", raising=False)
        assert sha256.use_lanes(1 << 20) in (True, False)  # resolves


class TestDeriveBallSeeds:
    """The derive_ball_seeds lane path against scalar derive_seed."""

    @pytest.fixture(autouse=True)
    def _force_lanes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHA256_LANES", "on")

    def _assert_matches(self, trial_seeds, labels):
        from repro.core.vectorized import derive_ball_seeds

        got = derive_ball_seeds(trial_seeds, labels).tolist()
        want = [
            derive_seed(seed, "ball", label)
            for seed in trial_seeds
            for label in labels
        ]
        assert got == want

    def test_lane_path_matches_scalar_derivation(self):
        labels = ["p%d" % i for i in range(32)]
        trial_seeds = [derive_seed(7, "trial", t) for t in range(8)]
        self._assert_matches(trial_seeds, labels)

    def test_edge_seeds_and_integer_labels(self):
        labels = list(range(24))
        trial_seeds = [0, 1, 2**32 - 1, 2**32, 2**64 - 1] * 8
        self._assert_matches(trial_seeds, labels)

    def test_long_labels_use_the_fallback_path(self):
        # Labels long enough to overflow a single padded block must give
        # the same seeds through the hashlib leg.
        labels = ["participant-%032d" % i for i in range(16)]
        trial_seeds = [derive_seed(3, "trial", t) for t in range(16)]
        self._assert_matches(trial_seeds, labels)

    def test_small_cells_below_the_cutoff(self):
        self._assert_matches([derive_seed(1, "trial", 0)], ["a", "b"])

    def test_gate_off_still_matches(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHA256_LANES", "off")
        labels = ["p%d" % i for i in range(16)]
        self._assert_matches([derive_seed(5, "trial", t) for t in range(4)], labels)
