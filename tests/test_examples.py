"""The examples are deliverables: they must run clean, end to end.

Each script is executed in a subprocess (as a user would run it) and must
exit 0 with its closing message on stdout.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_CLOSERS = {
    "quickstart.py": "the gap the paper closes",
    "shard_assignment.py": "within a constant of the calm run",
    "failover_early_termination.py": "failure-free instance",
    "adversary_gauntlet.py": "round count beyond a small constant",
    "loadbalance_vs_renaming.py": "doubly-logarithmic",
}


@pytest.mark.parametrize("script", sorted(EXPECTED_CLOSERS))
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert EXPECTED_CLOSERS[script] in completed.stdout


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES.glob("*.py")}
    assert on_disk == set(EXPECTED_CLOSERS)
