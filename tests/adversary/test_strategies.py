"""Unit tests for the adversary strategies."""

from __future__ import annotations

import pytest

from repro.adversary.base import (
    Adversary,
    AdversaryContext,
    clamp_plan,
    merge_plans,
)
from repro.adversary.none import NoFailures
from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.sandwich import SandwichAdversary
from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.adversary.splitter import HalfSplitAdversary
from repro.adversary.targeted import TargetedPriorityAdversary


def make_ctx(round_no=1, n=8, outbox=None, budget=7):
    pids = list(range(n))
    return AdversaryContext(
        round_no=round_no,
        running=tuple(pids),
        alive=tuple(pids),
        outbox=outbox if outbox is not None else {pid: ("hello",) for pid in pids},
        crashed_so_far=frozenset(),
        budget_remaining=budget,
        processes={},
    )


class TestPlanHelpers:
    def test_silent_plan(self):
        assert Adversary.silent([1, 2]) == {1: frozenset(), 2: frozenset()}

    def test_partial_plan(self):
        assert Adversary.partial(1, [2, 3]) == {1: frozenset({2, 3})}

    def test_merge_keeps_first(self):
        merged = merge_plans({1: frozenset({2})}, {1: frozenset(), 3: frozenset()})
        assert merged == {1: frozenset({2}), 3: frozenset()}

    def test_clamp_drops_dead_victims(self):
        plan = {1: frozenset(), 99: frozenset()}
        clamped = clamp_plan(plan, alive=[1, 2], budget_remaining=5)
        assert clamped == {1: frozenset()}

    def test_clamp_enforces_budget(self):
        plan = {pid: frozenset() for pid in range(5)}
        clamped = clamp_plan(plan, alive=list(range(5)), budget_remaining=2)
        assert len(clamped) == 2


class TestNoFailures:
    def test_never_crashes(self):
        assert NoFailures().plan(make_ctx()) == {}


class TestRandomCrash:
    def test_rate_zero_never_crashes(self):
        adversary = RandomCrashAdversary(0.0, seed=1)
        assert adversary.plan(make_ctx()) == {}

    def test_rate_one_crashes_everyone(self):
        adversary = RandomCrashAdversary(1.0, seed=1)
        assert len(adversary.plan(make_ctx())) == 8

    def test_cap_limits_total(self):
        adversary = RandomCrashAdversary(1.0, max_crashes=3, seed=1)
        total = len(adversary.plan(make_ctx())) + len(adversary.plan(make_ctx(2)))
        assert total == 3

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            RandomCrashAdversary(1.5)

    def test_reproducible_given_seed(self):
        first = RandomCrashAdversary(0.5, seed=7).plan(make_ctx())
        second = RandomCrashAdversary(0.5, seed=7).plan(make_ctx())
        assert first == second


class TestScheduled:
    def test_replays_schedule(self):
        adversary = ScheduledAdversary(
            [
                ScheduledCrash(1, 3, receivers="none"),
                ScheduledCrash(2, 4, receivers="all"),
                ScheduledCrash(2, 5, receivers=[0, 1]),
            ]
        )
        round1 = adversary.plan(make_ctx(1))
        assert round1 == {3: frozenset()}
        round2 = adversary.plan(make_ctx(2))
        assert round2[4] == frozenset(set(range(8)) - {4})
        assert round2[5] == frozenset({0, 1})

    def test_quiet_rounds(self):
        adversary = ScheduledAdversary([ScheduledCrash(5, 1)])
        assert adversary.plan(make_ctx(1)) == {}


class TestTargeted:
    def test_strikes_only_path_rounds(self):
        adversary = TargetedPriorityAdversary()
        hello_ctx = make_ctx(1)
        assert adversary.plan(hello_ctx) == {}
        path_ctx = make_ctx(2, outbox={pid: ("path", ((0, 8),)) for pid in range(8)})
        plan = adversary.plan(path_ctx)
        assert list(plan) == [0]  # lowest label

    def test_receivers_are_every_second(self):
        adversary = TargetedPriorityAdversary()
        ctx = make_ctx(2, outbox={pid: ("path", ()) for pid in range(8)})
        plan = adversary.plan(ctx)
        assert plan[0] == frozenset({1, 3, 5, 7})

    def test_cap(self):
        adversary = TargetedPriorityAdversary(max_crashes=1)
        ctx = make_ctx(2, outbox={pid: ("path", ()) for pid in range(8)})
        adversary.plan(ctx)
        assert adversary.plan(ctx) == {}

    def test_stride(self):
        adversary = TargetedPriorityAdversary(every_k_phases=2)
        ctx = make_ctx(2, outbox={pid: ("path", ()) for pid in range(8)})
        assert adversary.plan(ctx)  # first strike
        assert adversary.plan(ctx) == {}  # skipped
        assert adversary.plan(ctx)  # third seen, second strike

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            TargetedPriorityAdversary(every_k_phases=0)


class TestSandwich:
    def test_crashes_median_with_lower_half_delivery(self):
        adversary = SandwichAdversary(every_k_rounds=1)
        plan = adversary.plan(make_ctx(2))
        assert list(plan) == [4]
        assert plan[4] == frozenset({0, 1, 2})

    def test_needs_three_running(self):
        adversary = SandwichAdversary(every_k_rounds=1)
        assert adversary.plan(make_ctx(2, n=2)) == {}

    def test_cap(self):
        adversary = SandwichAdversary(every_k_rounds=1, max_crashes=1)
        assert adversary.plan(make_ctx(2))
        assert adversary.plan(make_ctx(3)) == {}


class TestHalfSplit:
    def test_first_round_split(self):
        adversary = HalfSplitAdversary()
        plan = adversary.plan(make_ctx(1))
        assert list(plan) == [0]
        assert plan[0] == frozenset({1, 3, 5, 7})

    def test_quiet_on_other_rounds(self):
        adversary = HalfSplitAdversary()
        assert adversary.plan(make_ctx(2)) == {}

    def test_multiple_victims_spread_over_labels(self):
        adversary = HalfSplitAdversary(victims_per_round=4)
        plan = adversary.plan(make_ctx(1))
        assert len(plan) == 4
        assert set(plan) == {0, 2, 4, 6}

    def test_victims_capped_by_budget_param(self):
        adversary = HalfSplitAdversary(victims_per_round=8, max_crashes=2)
        assert len(adversary.plan(make_ctx(1))) == 2

    def test_invalid_victims_per_round(self):
        with pytest.raises(ValueError):
            HalfSplitAdversary(victims_per_round=0)
