"""Unit tests for interval-node arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import TreeError
from repro.tree import node as nd


class TestMakeRoot:
    def test_root_spans_all_leaves(self):
        assert nd.make_root(8) == (0, 8)

    def test_single_leaf_tree(self):
        root = nd.make_root(1)
        assert nd.is_leaf(root)

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(TreeError):
            nd.make_root(bad)


class TestSpanAndLeaves:
    def test_span_counts_leaves(self):
        assert nd.span((0, 8)) == 8
        assert nd.span((3, 5)) == 2

    def test_leaf_detection(self):
        assert nd.is_leaf((4, 5))
        assert not nd.is_leaf((4, 6))

    def test_leaf_rank_round_trip(self):
        for rank in range(10):
            assert nd.leaf_rank(nd.leaf_node(rank)) == rank

    def test_leaf_rank_rejects_inner_node(self):
        with pytest.raises(TreeError):
            nd.leaf_rank((0, 2))

    def test_leaf_node_rejects_negative(self):
        with pytest.raises(TreeError):
            nd.leaf_node(-1)


class TestChildren:
    def test_even_split(self):
        assert nd.children((0, 8)) == ((0, 4), (4, 8))

    def test_odd_split_left_gets_ceil(self):
        assert nd.children((0, 5)) == ((0, 3), (3, 5))

    def test_children_partition_parent(self):
        for node in [(0, 8), (0, 7), (2, 9), (0, 2)]:
            left, right = nd.children(node)
            assert left[0] == node[0]
            assert left[1] == right[0]
            assert right[1] == node[1]
            assert nd.span(left) + nd.span(right) == nd.span(node)

    def test_left_right_match_children(self):
        node = (0, 6)
        assert nd.left_child(node) == nd.children(node)[0]
        assert nd.right_child(node) == nd.children(node)[1]

    def test_leaf_has_no_children(self):
        with pytest.raises(TreeError):
            nd.children((3, 4))
        with pytest.raises(TreeError):
            nd.left_child((3, 4))
        with pytest.raises(TreeError):
            nd.right_child((3, 4))


class TestContainment:
    def test_node_contains_itself(self):
        assert nd.contains((0, 8), (0, 8))

    def test_ancestor_contains_descendant(self):
        assert nd.contains((0, 8), (2, 4))
        assert nd.contains((0, 8), (7, 8))

    def test_disjoint_not_contained(self):
        assert not nd.contains((0, 4), (4, 8))
        assert not nd.contains((4, 8), (0, 4))

    def test_descendant_does_not_contain_ancestor(self):
        assert not nd.contains((2, 4), (0, 8))


class TestChildTowards:
    def test_routes_to_correct_child(self):
        assert nd.child_towards((0, 8), 1) == (0, 4)
        assert nd.child_towards((0, 8), 6) == (4, 8)

    def test_rejects_rank_outside(self):
        with pytest.raises(TreeError):
            nd.child_towards((0, 4), 5)

    def test_descends_to_leaf(self):
        node = (0, 8)
        while not nd.is_leaf(node):
            node = nd.child_towards(node, 5)
        assert node == (5, 6)
