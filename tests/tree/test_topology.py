"""Unit tests for the precomputed topology."""

from __future__ import annotations

import pytest

from repro.errors import TreeError
from repro.tree import node as nd
from repro.tree.topology import Topology


class TestShape:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16, 33])
    def test_node_count_is_2n_minus_1(self, n):
        assert Topology(n).node_count == 2 * n - 1

    def test_height_of_power_of_two(self):
        assert Topology(16).height == 4
        assert Topology(1).height == 0

    def test_height_of_non_power_of_two(self):
        # 5 leaves: root splits 3|2, the 3-subtree splits 2|1 -> depth 3.
        assert Topology(5).height == 3

    def test_rejects_zero_leaves(self):
        with pytest.raises(TreeError):
            Topology(0)

    def test_leaves_enumerate_in_order(self, topo8):
        assert list(topo8.leaves()) == [(i, i + 1) for i in range(8)]

    def test_nodes_cover_all_intervals(self, topo8):
        nodes = set(topo8.nodes())
        assert (0, 8) in nodes
        assert all((i, i + 1) in nodes for i in range(8))


class TestLookups:
    def test_depth_of_root_and_leaves(self, topo8):
        assert topo8.depth(topo8.root) == 0
        assert all(topo8.depth(leaf) == 3 for leaf in topo8.leaves())

    def test_depth_rejects_foreign_node(self, topo8):
        with pytest.raises(TreeError):
            topo8.depth((1, 3))  # not an aligned interval of this tree

    def test_parent_inverts_children(self, topo8):
        for node in topo8.nodes():
            if node == topo8.root:
                continue
            left, right = nd.children(topo8.parent(node))
            assert node in (left, right)

    def test_parent_of_root_raises(self, topo8):
        with pytest.raises(TreeError):
            topo8.parent(topo8.root)

    def test_sibling_is_other_child(self, topo8):
        assert topo8.sibling((0, 4)) == (4, 8)
        assert topo8.sibling((4, 8)) == (0, 4)

    def test_is_node(self, topo8):
        assert topo8.is_node((0, 8))
        assert not topo8.is_node((1, 3))


class TestPaths:
    def test_ancestors_ends_at_root(self, topo8):
        chain = topo8.ancestors((2, 3))
        assert chain[0] == (2, 3)
        assert chain[-1] == topo8.root
        assert len(chain) == 4

    def test_path_down_is_inclusive(self, topo8):
        path = topo8.path_down(topo8.root, (5, 6))
        assert path[0] == topo8.root
        assert path[-1] == (5, 6)
        for parent, child in zip(path, path[1:]):
            assert nd.contains(parent, child)
            assert topo8.parent(child) == parent

    def test_path_down_from_inner_node(self, topo8):
        path = topo8.path_down((4, 8), (7, 8))
        assert path == [(4, 8), (6, 8), (7, 8)]

    def test_path_down_rejects_non_descendant(self, topo8):
        with pytest.raises(TreeError):
            topo8.path_down((0, 4), (5, 6))

    def test_path_to_leaf_matches_path_down(self, topo8):
        assert topo8.path_to_leaf(topo8.root, 5) == tuple(
            topo8.path_down(topo8.root, (5, 6))
        )

    @pytest.mark.parametrize("n", [3, 5, 7, 12])
    def test_every_leaf_reachable_in_uneven_trees(self, n):
        topo = Topology(n)
        for rank in range(n):
            path = topo.path_to_leaf(topo.root, rank)
            assert path[-1] == (rank, rank + 1)


class TestCachedTopologyReuse:
    """The process-wide cache: batch trials share, deep sweeps stay bounded."""

    def test_same_n_returns_the_same_instance(self):
        from repro.tree.topology import cached_topology

        assert cached_topology(37) is cached_topology(37)

    def test_batch_trials_of_one_size_build_one_topology(self, monkeypatch):
        """A seed sweep must never rebuild the topology per trial."""
        from repro.sim.batch import ScenarioMatrix, run_batch
        from repro.tree import topology as topo_module

        built = []
        original = topo_module.Topology.__init__

        def counting(self, n):
            built.append(n)
            original(self, n)

        monkeypatch.setattr(topo_module.Topology, "__init__", counting)
        topo_module.cached_topology.cache_clear()
        from repro.core.vectorized import HAVE_NUMPY, vectorized_topology

        if HAVE_NUMPY:
            # The stacked engine's ndarray cache wraps cached_topology;
            # a pre-warmed entry would hide the rebuild being counted.
            vectorized_topology.cache_clear()
        run_batch(
            ScenarioMatrix.build(["balls-into-leaves"], [23], trials=6),
            executor="serial",
        )
        assert built == [23]

    def test_cache_is_lru_bounded(self):
        from repro.tree.topology import cached_topology

        cached_topology.cache_clear()
        for n in range(1, 41):
            cached_topology(n)
        info = cached_topology.cache_info()
        assert info.currsize <= info.maxsize <= 16
