"""Unit tests for candidate-path construction."""

from __future__ import annotations

import random

import pytest

from repro.errors import TreeError
from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.paths import (
    kth_free_leaf_path,
    leftmost_free_leaf_path,
    path_to_leaf,
    random_capacity_path,
)
from repro.tree.topology import Topology


def _assert_valid_path(topo, path, start):
    assert path[0] == start
    assert nd.is_leaf(path[-1])
    for parent, child in zip(path, path[1:]):
        assert topo.parent(child) == parent


class TestRandomCapacityPath:
    def test_path_shape(self, view8, topo8):
        path = random_capacity_path(view8, topo8.root, random.Random(1))
        _assert_valid_path(topo8, path, topo8.root)
        assert len(path) == 4  # depth 3 + start

    def test_never_enters_full_subtree(self, topo8):
        view = LocalTreeView(topo8, ["mover"])
        # Fill the entire left half with settled balls.
        for rank in range(4):
            view.insert(f"s{rank}", nd.leaf_node(rank))
        for trial in range(50):
            path = random_capacity_path(view, topo8.root, random.Random(trial))
            assert path[1] == (4, 8), "must avoid the full left subtree"

    def test_weighted_choice_respects_capacity_ratio(self, topo8):
        view = LocalTreeView(topo8, ["mover"])
        # Left subtree has 1 free leaf, right has 4: P(left) = 1/5.
        for rank in range(3):
            view.insert(f"s{rank}", nd.leaf_node(rank))
        rng = random.Random(42)
        lefts = sum(
            random_capacity_path(view, topo8.root, rng)[1] == (0, 4)
            for _ in range(4000)
        )
        assert 0.15 < lefts / 4000 < 0.25  # expected 0.2

    def test_ghost_overflow_falls_back_to_larger_residual(self):
        topo = Topology(2)
        view = LocalTreeView(topo, ["mover"])
        # Ghosts over-fill both leaves; the path must still reach a leaf.
        view.insert("g1", (0, 1))
        view.insert("g2", (1, 2))
        view.insert("g3", (1, 2))
        path = random_capacity_path(view, topo.root, random.Random(0))
        assert nd.is_leaf(path[-1])
        assert path[-1] == (0, 1)  # raw residual 0 beats raw residual -1

    def test_path_from_leaf_is_singleton(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("a", (3, 4))
        assert random_capacity_path(view, (3, 4), random.Random(0)) == ((3, 4),)


class TestDeterministicPaths:
    def test_path_to_leaf(self, topo8):
        path = path_to_leaf(topo8, topo8.root, 6)
        _assert_valid_path(topo8, path, topo8.root)
        assert path[-1] == (6, 7)

    def test_path_to_leaf_rejects_outside_rank(self, topo8):
        with pytest.raises(TreeError):
            path_to_leaf(topo8, (0, 4), 6)

    def test_kth_free_leaf_path(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("s", (0, 1))
        path = kth_free_leaf_path(view, topo8.root, 0)
        assert path[-1] == (1, 2)

    def test_leftmost_free_leaf_path(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("s", (0, 1))
        view.insert("t", (1, 2))
        path = leftmost_free_leaf_path(view, topo8.root)
        assert path[-1] == (2, 3)

    def test_leftmost_falls_back_when_no_free_leaf(self):
        topo = Topology(2)
        view = LocalTreeView(topo)
        view.insert("a", (0, 1))
        view.insert("b", (1, 2))
        path = leftmost_free_leaf_path(view, topo.root)
        assert path[-1] == (0, 1)
