"""Unit tests for the ASCII renderers."""

from __future__ import annotations

from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.render import render_path, render_view
from repro.tree.topology import Topology


class TestRenderView:
    def test_initial_configuration(self, topo8):
        view = LocalTreeView(topo8, range(8))
        text = render_view(view)
        assert "node [0,8)" in text
        assert "balls={0, 1, 2" in text
        assert "empty leaves" in text

    def test_skip_empty_false_shows_all(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("a", (0, 1))
        full = render_view(view, skip_empty=False)
        assert full.count("leaf") >= 8

    def test_many_balls_truncated(self, topo16):
        view = LocalTreeView(topo16, range(16))
        text = render_view(view)
        assert "(+8)" in text

    def test_settled_leaf_shown(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("winner", (0, 1))
        assert "leaf [0,1)" in render_view(view)
        assert "winner" in render_view(view)


class TestRenderPath:
    def test_shows_gateways_per_depth(self):
        topo = Topology(16)
        view = LocalTreeView(topo)
        view.insert("p", (8, 16))
        text = render_path(view, 15)
        lines = text.splitlines()
        assert len(lines) == 4  # root .. parent of leaf 15
        assert "gateway=[0,8)" in lines[0]
        assert "balls_here=1" in lines[1]

    def test_gateway_capacity_reflects_occupancy(self):
        topo = Topology(8)
        view = LocalTreeView(topo)
        for rank in range(4):
            view.insert(f"s{rank}", nd.leaf_node(rank))
        text = render_path(view, 7)
        assert "gateway=[0,4) cap=0" in text
