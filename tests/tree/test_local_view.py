"""Unit tests for LocalTreeView bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import TreeError, UnknownBallError
from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.topology import Topology


class TestInsertRemove:
    def test_initial_balls_start_at_root(self, view8):
        assert len(view8) == 8
        assert all(view8.position(b) == (0, 8) for b in range(8))

    def test_insert_at_specific_node(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("a", (0, 4))
        assert view.position("a") == (0, 4)
        assert view.subtree_balls((0, 8)) == 1
        assert view.subtree_balls((0, 4)) == 1
        assert view.subtree_balls((4, 8)) == 0

    def test_duplicate_insert_rejected(self, view8):
        with pytest.raises(TreeError):
            view8.insert(3)

    def test_insert_validates_node(self, topo8):
        view = LocalTreeView(topo8)
        with pytest.raises(TreeError):
            view.insert("a", (1, 3))

    def test_remove_updates_counts(self, view8):
        view8.remove(0)
        assert 0 not in view8
        assert view8.subtree_balls((0, 8)) == 7

    def test_remove_unknown_ball(self, view8):
        with pytest.raises(UnknownBallError):
            view8.remove("ghost")

    def test_contains(self, view8):
        assert 5 in view8
        assert "nope" not in view8


class TestPlace:
    def test_place_descends(self, view8):
        view8.place(0, (0, 1))
        assert view8.position(0) == (0, 1)
        assert view8.subtree_balls((0, 4)) == 1
        assert view8.subtree_balls((0, 8)) == 8

    def test_place_is_idempotent_at_same_node(self, view8):
        view8.place(0, (0, 8))
        assert view8.subtree_balls((0, 8)) == 8

    def test_place_moves_between_subtrees(self, topo8):
        view = LocalTreeView(topo8, ["x"])
        view.place("x", (0, 1))
        view.place("x", (7, 8))
        assert view.subtree_balls((0, 4)) == 0
        assert view.subtree_balls((4, 8)) == 1


class TestCapacities:
    def test_remaining_capacity_decreases(self, topo8):
        view = LocalTreeView(topo8)
        assert view.remaining_capacity((0, 8)) == 8
        view.insert("a", (0, 1))
        view.insert("b", (0, 4))
        assert view.remaining_capacity((0, 8)) == 6
        assert view.remaining_capacity((0, 4)) == 2
        assert view.remaining_capacity((0, 1)) == 0

    def test_raw_capacity_can_go_negative(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("a", (0, 1))
        view.insert("ghost", (0, 1))  # over-filled leaf: allowed, clamped
        assert view.raw_remaining_capacity((0, 1)) == -1
        assert view.remaining_capacity((0, 1)) == 0

    def test_leaf_balls_and_free_leaves(self, topo8):
        view = LocalTreeView(topo8, ["inner"])
        view.insert("leafy", (2, 3))
        assert view.leaf_balls((0, 8)) == 1
        assert view.free_leaves((0, 8)) == 7
        assert view.free_leaves((0, 4)) == 3

    def test_kth_free_leaf_skips_occupied(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("a", (0, 1))
        view.insert("b", (2, 3))
        assert view.kth_free_leaf((0, 8), 0) == (1, 2)
        assert view.kth_free_leaf((0, 8), 1) == (3, 4)
        assert view.kth_free_leaf((0, 8), 5) == (7, 8)

    def test_kth_free_leaf_out_of_range(self, topo8):
        view = LocalTreeView(topo8)
        with pytest.raises(TreeError):
            view.kth_free_leaf((0, 8), 8)


class TestAggregates:
    def test_all_at_leaves_transitions(self, topo8):
        view = LocalTreeView(topo8, ["a", "b"])
        assert not view.all_at_leaves()
        view.place("a", (0, 1))
        view.place("b", (1, 2))
        assert view.all_at_leaves()
        assert view.balls_at_leaves() == 2

    def test_max_inner_occupancy_ignores_leaves(self, topo8):
        view = LocalTreeView(topo8, ["a", "b", "c"])
        view.place("a", (0, 1))
        assert view.max_inner_occupancy() == 2  # b, c at the root

    def test_max_path_population_accumulates_down(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("r", (0, 8))
        view.insert("m", (0, 4))
        view.insert("d", (0, 2))
        view.insert("elsewhere", (4, 8))
        # Path root -> (0,4) -> (0,2) carries 3 balls.
        assert view.max_path_population() == 3

    def test_occupancy_by_depth(self, topo8):
        view = LocalTreeView(topo8, ["a", "b"])
        view.place("a", (0, 1))
        histogram = view.occupancy_by_depth()
        assert histogram[0] == 1
        assert histogram[3] == 1

    def test_sorted_balls_and_label_rank(self, topo8):
        view = LocalTreeView(topo8, [5, 1, 9])
        assert view.sorted_balls() == [1, 5, 9]
        assert view.label_rank(5) == 1
        view.insert(0)
        assert view.label_rank(5) == 2  # cache invalidated by insert
        with pytest.raises(UnknownBallError):
            view.label_rank(42)


class TestCopyAndEquality:
    def test_copy_is_deep(self, view8):
        clone = view8.copy()
        clone.place(0, (0, 1))
        assert view8.position(0) == (0, 8)
        assert clone.position(0) == (0, 1)

    def test_copy_equal_until_diverging(self, view8):
        clone = view8.copy()
        assert clone == view8
        clone.remove(7)
        assert clone != view8

    def test_snapshot_is_canonical(self, topo8):
        first = LocalTreeView(topo8, [2, 1])
        second = LocalTreeView(topo8, [1, 2])
        assert first.snapshot() == second.snapshot()


class TestUnevenTrees:
    @pytest.mark.parametrize("n", [3, 5, 6, 7])
    def test_full_occupation_possible(self, n):
        topo = Topology(n)
        view = LocalTreeView(topo)
        for rank in range(n):
            view.insert(f"b{rank}", nd.leaf_node(rank))
        assert view.all_at_leaves()
        assert view.remaining_capacity(topo.root) == 0
