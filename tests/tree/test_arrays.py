"""TopologyArrays must encode exactly the shape Topology describes."""

from __future__ import annotations

import pytest

from repro.tree import node as nd
from repro.tree.arrays import TopologyArrays
from repro.tree.topology import Topology, cached_topology


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 16, 31, 64])
class TestArraysMatchTopology:
    def test_every_node_round_trips(self, n):
        topo = Topology(n)
        arr = TopologyArrays(topo)
        assert arr.n == n
        assert len(arr.nodes) == topo.node_count
        for i, node in enumerate(arr.nodes):
            assert arr.index_of[node] == i
            assert arr.span[i] == nd.span(node)
            assert arr.depth[i] == topo.depth(node)
            if nd.is_leaf(node):
                assert arr.left[i] == -1 and arr.right[i] == -1
                assert arr.leaf_rank[i] == nd.leaf_rank(node)
            else:
                left, right = nd.children(node)
                assert arr.nodes[arr.left[i]] == left
                assert arr.nodes[arr.right[i]] == right
                assert arr.leaf_rank[i] == -1
                assert arr.mid[i] == left[1]
            if node == topo.root:
                assert arr.parent[i] == -1
                assert arr.root == i
            else:
                assert arr.nodes[arr.parent[i]] == topo.parent(node)

    def test_path_to_rank_matches_topology_paths(self, n):
        topo = Topology(n)
        arr = TopologyArrays(topo)
        for rank in range(n):
            expected = topo.path_to_leaf(topo.root, rank)
            got = [arr.nodes[i] for i in arr.path_to_rank(arr.root, rank)]
            assert got == list(expected)
            assert arr.nodes[arr.leaf_index(rank)] == nd.leaf_node(rank)

    def test_path_to_rank_rejects_outside_rank(self, n):
        arr = Topology(n).arrays()
        with pytest.raises(ValueError):
            arr.path_to_rank(arr.root, n)


class TestCaching:
    def test_topology_arrays_cached_per_instance(self):
        topo = Topology(8)
        assert topo.arrays() is topo.arrays()

    def test_cached_topology_shared(self):
        assert cached_topology(32) is cached_topology(32)
        assert cached_topology(32) is not cached_topology(16)
