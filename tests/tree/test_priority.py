"""Unit tests for the <R priority order (Definition 1)."""

from __future__ import annotations

from repro.tree.local_view import LocalTreeView
from repro.tree.priority import higher_priority, ordered_balls, priority_key


class TestDefinition1:
    def test_deeper_ball_has_higher_priority(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("deep", (0, 1))
        view.insert("shallow", (0, 8))
        assert higher_priority(view, "deep", "shallow")
        assert not higher_priority(view, "shallow", "deep")

    def test_equal_depth_breaks_by_label(self, topo8):
        view = LocalTreeView(topo8, ["a", "b"])
        assert higher_priority(view, "a", "b")

    def test_depth_dominates_label(self, topo8):
        view = LocalTreeView(topo8)
        view.insert("z", (0, 1))  # deep but large label
        view.insert("a", (0, 8))  # shallow small label
        assert higher_priority(view, "z", "a")


class TestOrderedBalls:
    def test_orders_by_depth_then_label(self, topo8):
        view = LocalTreeView(topo8)
        view.insert(30, (0, 8))
        view.insert(20, (0, 4))
        view.insert(10, (0, 8))
        view.insert(5, (0, 1))
        assert ordered_balls(view) == [5, 20, 10, 30]

    def test_total_order_is_consistent_with_keys(self, topo8):
        view = LocalTreeView(topo8)
        for index in range(8):
            view.insert(index, (index, index + 1))
        order = ordered_balls(view)
        keys = [priority_key(view, ball) for ball in order]
        assert keys == sorted(keys)

    def test_empty_view(self, topo8):
        assert ordered_balls(LocalTreeView(topo8)) == []

    def test_string_labels(self, topo8):
        view = LocalTreeView(topo8, ["srv-2", "srv-1"])
        assert ordered_balls(view) == ["srv-1", "srv-2"]
