"""Unit tests for identifiers, helpers, and the exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import errors
from repro.ids import interleave, require_distinct, sparse_ids, string_ids


class TestIds:
    def test_sparse_ids_distinct_and_sparse(self):
        ids = sparse_ids(100)
        assert len(set(ids)) == 100
        assert all(b - a > 1 for a, b in zip(ids, ids[1:]))

    def test_sparse_ids_empty(self):
        assert sparse_ids(0) == []

    def test_sparse_ids_rejects_negative(self):
        with pytest.raises(ValueError):
            sparse_ids(-1)

    def test_string_ids_sortable_and_distinct(self):
        ids = string_ids(12)
        assert ids == sorted(ids)
        assert len(set(ids)) == 12

    def test_string_ids_prefix(self):
        assert string_ids(1, prefix="node")[0].startswith("node-")

    def test_require_distinct_accepts(self):
        require_distinct([1, 2, 3])

    def test_require_distinct_rejects(self):
        with pytest.raises(ValueError):
            require_distinct([1, 2, 1])

    def test_interleave(self):
        assert interleave([1, 3], [2, 4]) == [1, 2, 3, 4]
        assert interleave([1], [2, 4, 6]) == [1, 2, 4, 6]


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.SimulationError,
            errors.ProtocolViolation,
            errors.SpecViolation,
            errors.TreeError,
            errors.CapacityError,
            errors.UnknownBallError,
            errors.ExperimentError,
            errors.UnknownExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_round_limit_carries_context(self):
        error = errors.RoundLimitExceeded(10, 3)
        assert error.limit == 10
        assert error.alive == 3
        assert "10" in str(error)

    def test_unknown_experiment_lists_known(self):
        error = errors.UnknownExperimentError("EXP-X", ["EXP-A", "EXP-B"])
        assert "EXP-A" in str(error)


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_algorithms_registry(self):
        assert set(repro.ALGORITHMS) == {
            "balls-into-leaves",
            "early-terminating",
            "rank-descent",
            "leftmost",
            "flood",
            "approx-agreement",
            "parallel-retry",
        }
