"""Golden regression tests: exact outputs for pinned seeds.

Determinism is a documented guarantee (README, repro.sim.rng).  These
tests pin complete outputs for a few seeds so that any change to the
derivation scheme, the movement rule, or the round structure is caught
deliberately rather than silently.  If you change the algorithm on
purpose, update the goldens in the same commit and say so.
"""

from __future__ import annotations

import pytest

from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.adversary.splitter import HalfSplitAdversary
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming


class TestGoldenRuns:
    def test_bil_n8_seed0(self):
        run = run_renaming("balls-into-leaves", sparse_ids(8), seed=0)
        assert run.rounds == 5
        assert run.names == {
            10000: 5,
            10097: 1,
            10194: 4,
            10291: 3,
            10388: 6,
            10485: 0,
            10582: 7,
            10679: 2,
        }

    def test_bil_n8_seed1_differs(self):
        run = run_renaming("balls-into-leaves", sparse_ids(8), seed=1)
        assert run.names != run_renaming("balls-into-leaves", sparse_ids(8), seed=0).names

    def test_early_terminating_names_are_ranks(self):
        ids = sparse_ids(8)
        run = run_renaming("early-terminating", ids, seed=0)
        assert run.rounds == 3
        assert run.names == {pid: rank for rank, pid in enumerate(ids)}

    def test_bil_under_half_split_seed0(self):
        ids = sparse_ids(8)
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=0,
            adversary=HalfSplitAdversary(seed=0),
        )
        assert run.crashed == frozenset({ids[0]})
        names = list(run.names.values())
        assert len(names) == 7
        assert len(set(names)) == 7

    def test_faithful_mode_matches_golden(self):
        run = run_renaming("balls-into-leaves", sparse_ids(8), seed=0, view_mode="faithful")
        assert run.names[10485] == 0
        assert run.rounds == 5

    @pytest.mark.parametrize("kernel", ["reference", "columnar"])
    def test_halt_on_name_mid_path_crash_golden(self, kernel):
        """Pinned output of the announced-termination lifecycle under a
        mid-path-broadcast crash (the scenario that deadlocked under the
        old silence-at-leaf rule).  Golden regenerated with the PR-3
        lifecycle fix; any change to the retention semantics shifts it.
        Both kernels must reproduce it exactly."""
        ids = sparse_ids(9)
        schedule = [ScheduledCrash(2, ids[0], receivers=[ids[1]])]
        run = run_renaming(
            "balls-into-leaves",
            ids,
            seed=1,
            adversary=ScheduledAdversary(schedule),
            halt_on_name=True,
            kernel=kernel,
        )
        assert run.kernel == kernel
        assert run.rounds == 5
        assert run.crashed == frozenset({ids[0]})
        assert run.names == {
            10097: 1,
            10194: 7,
            10291: 0,
            10388: 3,
            10485: 2,
            10582: 8,
            10679: 4,
            10776: 6,
        }
