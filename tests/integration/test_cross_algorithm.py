"""Cross-algorithm integration: every algorithm, every adversary, mid n.

These are the "does the whole stack hold together" runs: each algorithm
against each adversary family at n=48 (not a power of two, on purpose),
plus determinism and complexity sanity assertions across the matrix.
"""

from __future__ import annotations

import pytest

from repro.adversary.none import NoFailures
from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.sandwich import SandwichAdversary
from repro.adversary.splitter import HalfSplitAdversary
from repro.adversary.targeted import TargetedPriorityAdversary
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming

N = 48

ADVERSARIES = {
    "none": lambda: NoFailures(),
    "random-split": lambda: RandomCrashAdversary(0.08, seed=5),
    "random-uniform": lambda: RandomCrashAdversary(0.08, delivery="uniform", seed=5),
    "targeted": lambda: TargetedPriorityAdversary(seed=5),
    "sandwich": lambda: SandwichAdversary(seed=5),
    "half-split": lambda: HalfSplitAdversary(
        rounds=frozenset({1, 3, 5, 7, 9}), seed=5
    ),
}

ALGORITHMS = ["balls-into-leaves", "early-terminating", "rank-descent"]


@pytest.mark.parametrize("adversary_name", sorted(ADVERSARIES))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_algorithm_survives_adversary(algorithm, adversary_name):
    run = run_renaming(
        algorithm,
        sparse_ids(N),
        seed=5,
        adversary=ADVERSARIES[adversary_name](),
    )
    names = list(run.names.values())
    assert len(names) == N - run.failures
    assert len(set(names)) == len(names)
    assert all(0 <= name < N for name in names)


class TestComplexitySanity:
    def test_bil_beats_flood_by_a_lot(self):
        bil = run_renaming("balls-into-leaves", sparse_ids(N), seed=6)
        flood = run_renaming("flood", sparse_ids(N), seed=6)
        assert bil.rounds * 4 < flood.rounds

    def test_early_terminating_beats_plain_failure_free(self):
        early = run_renaming("early-terminating", sparse_ids(N), seed=6)
        plain = run_renaming("balls-into-leaves", sparse_ids(N), seed=6)
        assert early.rounds < plain.rounds

    def test_rounds_grow_very_slowly(self):
        small = run_renaming("balls-into-leaves", sparse_ids(16), seed=6)
        large = run_renaming("balls-into-leaves", sparse_ids(1024), seed=6)
        assert large.rounds <= small.rounds + 6  # loglog growth

    def test_crashes_do_not_blow_up_rounds(self):
        calm = run_renaming("balls-into-leaves", sparse_ids(256), seed=7)
        stormy = run_renaming(
            "balls-into-leaves",
            sparse_ids(256),
            seed=7,
            adversary=RandomCrashAdversary(0.2, seed=7),
        )
        assert stormy.rounds <= calm.rounds + 6  # Section 5.3


class TestDeterminismMatrix:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_reproducible_under_adversary(self, algorithm):
        def once():
            return run_renaming(
                algorithm,
                sparse_ids(N),
                seed=8,
                adversary=RandomCrashAdversary(0.1, seed=8),
            )

        first, second = once(), once()
        assert first.names == second.names
        assert first.rounds == second.rounds
        assert first.crashed == second.crashed


class TestAtScale:
    """One larger run per headline configuration (a few seconds total)."""

    def test_bil_2048_with_heavy_crashes(self):
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(2048),
            seed=12,
            adversary=RandomCrashAdversary(0.1, seed=12),
        )
        names = list(run.names.values())
        assert len(names) == 2048 - run.failures
        assert len(set(names)) == len(names)
        assert run.rounds <= 13  # ~ 2 * loglog n phases + slack

    def test_early_terminating_2048_halt_on_name(self):
        run = run_renaming(
            "early-terminating", sparse_ids(2048), seed=13, halt_on_name=True
        )
        assert run.rounds == 3
        assert sorted(run.names.values()) == list(range(2048))


class TestNamespaceShapes:
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 100])
    def test_odd_sizes_across_algorithms(self, n):
        for algorithm in ALGORITHMS:
            run = run_renaming(algorithm, sparse_ids(n), seed=9)
            assert sorted(run.names.values()) == list(range(n))

    def test_string_ids_under_crashes(self):
        from repro.ids import string_ids

        run = run_renaming(
            "balls-into-leaves",
            string_ids(30),
            seed=10,
            adversary=RandomCrashAdversary(0.1, seed=10),
        )
        assert len(set(run.names.values())) == len(run.names)
