"""Unit tests for the lock-step engine and crash semantics."""

from __future__ import annotations

from typing import Any, Mapping

import pytest

from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.sim.process import SyncProcess
from repro.sim.simulator import Simulation
from repro.sim.trace import Trace


class EchoProcess(SyncProcess):
    """Broadcasts its pid and records every inbox; halts after `life` rounds."""

    def __init__(self, pid, life=3):
        super().__init__(pid)
        self.inboxes = []
        self._life = life

    def compose(self, round_no):
        return ("echo", self.pid, round_no)

    def deliver(self, round_no, inbox: Mapping[Any, Any]):
        self.inboxes.append(dict(inbox))
        if round_no >= self._life:
            self.decide(self.pid)
            self.halt()


def make_sim(n=4, life=3, **kwargs):
    procs = [EchoProcess(i, life) for i in range(n)]
    return procs, Simulation(procs, **kwargs)


class TestLockStep:
    def test_runs_until_all_halt(self):
        _, sim = make_sim(life=3)
        result = sim.run()
        assert result.rounds == 3
        assert len(result.halted) == 4
        assert not result.crashed

    def test_full_delivery_without_crashes(self):
        procs, sim = make_sim(n=3, life=1)
        sim.run()
        for proc in procs:
            assert set(proc.inboxes[0]) == {0, 1, 2}

    def test_self_delivery_included(self):
        procs, sim = make_sim(n=2, life=1)
        sim.run()
        assert procs[0].inboxes[0][0] == ("echo", 0, 1)

    def test_round_limit_enforced(self):
        class Forever(EchoProcess):
            def deliver(self, round_no, inbox):
                pass

        sim = Simulation([Forever(0)], max_rounds=5)
        with pytest.raises(RoundLimitExceeded):
            sim.run()

    def test_requires_processes(self):
        with pytest.raises(ConfigurationError):
            Simulation([])

    def test_rejects_duplicate_pids(self):
        with pytest.raises(ValueError):
            Simulation([EchoProcess(1), EchoProcess(1)])

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            Simulation([EchoProcess(0)], crash_budget=1)  # t < n required

    def test_metrics_count_messages(self):
        _, sim = make_sim(n=3, life=2)
        result = sim.run()
        assert result.metrics.total_rounds == 2
        assert result.metrics.total_messages_sent == 6
        assert result.metrics.total_messages_delivered == 18


class TestCrashSemantics:
    def test_silent_crash_removes_message_everywhere(self):
        adversary = ScheduledAdversary([ScheduledCrash(1, 0, receivers="none")])
        procs, sim = make_sim(n=4, life=2, adversary=adversary)
        result = sim.run()
        assert result.crashed == frozenset({0})
        for proc in procs[1:]:
            assert 0 not in proc.inboxes[0]

    def test_partial_delivery_splits_receivers(self):
        adversary = ScheduledAdversary([ScheduledCrash(1, 0, receivers=[1])])
        procs, sim = make_sim(n=4, life=2, adversary=adversary)
        sim.run()
        assert 0 in procs[1].inboxes[0]
        assert 0 not in procs[2].inboxes[0]
        assert 0 not in procs[3].inboxes[0]

    def test_crashed_process_stops_for_good(self):
        adversary = ScheduledAdversary([ScheduledCrash(1, 0, receivers="all")])
        procs, sim = make_sim(n=3, life=3, adversary=adversary)
        sim.run()
        # Victim delivered in no later round.
        assert len(procs[0].inboxes) == 0
        # Later rounds never contain the victim's messages.
        assert all(0 not in inbox for inbox in procs[1].inboxes[1:])

    def test_budget_clamps_plan(self):
        adversary = ScheduledAdversary(
            [ScheduledCrash(1, pid, receivers="none") for pid in range(4)]
        )
        _, sim = make_sim(n=4, life=2, adversary=adversary, crash_budget=2)
        result = sim.run()
        assert len(result.crashed) == 2

    def test_crash_of_unknown_pid_is_ignored(self):
        adversary = ScheduledAdversary([ScheduledCrash(1, "ghost", receivers="none")])
        _, sim = make_sim(n=2, life=1, adversary=adversary)
        result = sim.run()
        assert not result.crashed

    def test_trace_records_crash_and_halt(self):
        trace = Trace()
        adversary = ScheduledAdversary([ScheduledCrash(1, 0, receivers="none")])
        _, sim = make_sim(n=3, life=2, adversary=adversary, trace=trace)
        sim.run()
        assert len(trace.events("crash")) == 1
        assert trace.events("crash")[0].data["pid"] == 0
        assert len(trace.events("halt")) == 2

    def test_correct_set_excludes_crashed(self):
        adversary = ScheduledAdversary([ScheduledCrash(1, 2, receivers="none")])
        _, sim = make_sim(n=4, life=2, adversary=adversary)
        result = sim.run()
        assert result.correct == frozenset({0, 1, 3})


class TestObservers:
    def test_observer_called_each_round(self):
        seen = []
        _, sim = make_sim(n=2, life=3)
        sim2 = Simulation(
            [EchoProcess(i, 3) for i in range(2)],
            observers=[lambda s, r: seen.append(r)],
        )
        sim2.run()
        assert seen == [1, 2, 3]

    def test_step_returns_false_when_done(self):
        _, sim = make_sim(n=1, life=1)
        assert not sim.step()  # life=1: halts in round 1
        assert not sim.step()  # idempotent afterwards


class TestCorrectSet:
    """`SimulationResult.correct` must cover *all* participants.

    Regression: it used to derive the correct set from the decision keys,
    so a hand-built result that dropped a non-decider from ``decisions``
    silently dropped it from the correct set too.
    """

    def test_crash_before_deciding_still_counted_as_participant(self):
        from repro.sim.metrics import SimulationMetrics
        from repro.sim.simulator import SimulationResult

        adversary = ScheduledAdversary([ScheduledCrash(1, 2, receivers="none")])
        _, sim = make_sim(n=4, life=3, adversary=adversary)
        result = sim.run()
        # The victim crashed in round 1, well before its life-3 decision.
        assert result.decisions[2] is None
        assert result.participants == frozenset(range(4))
        assert result.correct == result.participants - result.crashed
        # A result rebuilt without the undecided victim in `decisions`
        # (as external tooling does) must report the same correct set.
        rebuilt = SimulationResult(
            rounds=result.rounds,
            decisions={pid: name for pid, name in result.decisions.items() if name is not None},
            crashed=result.crashed,
            halted=result.halted,
            metrics=SimulationMetrics(),
            participants=result.participants,
        )
        assert rebuilt.correct == result.correct

    def test_correct_survivor_that_never_decided_is_not_dropped(self):
        from repro.sim.metrics import SimulationMetrics
        from repro.sim.simulator import SimulationResult

        result = SimulationResult(
            rounds=1,
            decisions={"a": 0},  # "c" never decided and was left out entirely
            crashed=frozenset({"b"}),
            halted=frozenset({"a"}),
            metrics=SimulationMetrics(),
            participants=frozenset({"a", "b", "c"}),
        )
        assert result.correct == frozenset({"a", "c"})

    def test_decisions_keys_remain_the_fallback(self):
        from repro.sim.metrics import SimulationMetrics
        from repro.sim.simulator import SimulationResult

        result = SimulationResult(
            rounds=1,
            decisions={"a": 0, "b": None},
            crashed=frozenset({"b"}),
            halted=frozenset({"a"}),
            metrics=SimulationMetrics(),
        )
        assert result.correct == frozenset({"a"})
