"""Differential suite: the columnar kernel against the reference engine.

The reference lock-step engine is the executable specification; the
columnar fast path earns its existence by being bit-identical to it on
every run it supports — round counts, name assignments, crash sets,
halting sets, per-round metrics — across the algorithm x adversary x
seed grid.  Cells the fast path legitimately rejects must be rejected
*explicitly* (``KernelUnsupported`` when pinned, silent fallback to the
reference kernel under ``auto``), never silently mis-simulated.
"""

from __future__ import annotations

import pytest

from repro.adversary.base import Adversary
from repro.adversary.none import NoFailures
from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.sandwich import SandwichAdversary
from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.adversary.splitter import HalfSplitAdversary
from repro.adversary.targeted import TargetedPriorityAdversary
from repro.errors import ConfigurationError, KernelUnsupported, RoundLimitExceeded
from repro.ids import sparse_ids, string_ids
from repro.sim.batch import ScenarioMatrix, run_batch
from repro.sim.kernel import KernelRequest, select_kernel
from repro.sim.runner import ALGORITHMS, run_renaming
from repro.sim.trace import Trace

BIL_ALGORITHMS = sorted(name for name, policy in ALGORITHMS.items() if policy)

ADVERSARY_FACTORIES = {
    "none": lambda seed: None,
    "no-failures": lambda seed: NoFailures(),
    "random": lambda seed: RandomCrashAdversary(0.15, seed=seed),
    "random-uniform": lambda seed: RandomCrashAdversary(
        0.2, delivery="uniform", seed=seed
    ),
    "targeted": lambda seed: TargetedPriorityAdversary(max_crashes=3, seed=seed),
    "sandwich": lambda seed: SandwichAdversary(seed=seed),
    "half-split": lambda seed: HalfSplitAdversary(seed=seed),
}

#: The failure-free cells (single shared view, no crash bookkeeping).
FAILURE_FREE = ("none", "no-failures")

#: Certified crashing adversaries: partial deliveries, divergent view
#: classes, and (with halt_on_name) the announced-termination lifecycle
#: all run on the columnar crash engine.
CRASHING = ("random", "random-uniform", "targeted", "sandwich", "half-split")


class UncertifiedAdversary(Adversary):
    """A custom strategy the columnar kernel cannot certify."""

    def plan(self, ctx):
        return {}


def _run(algorithm, n, seed, kernel, adversary_key="none", **kwargs):
    return run_renaming(
        algorithm,
        sparse_ids(n),
        seed=seed,
        adversary=ADVERSARY_FACTORIES[adversary_key](seed),
        kernel=kernel,
        **kwargs,
    )


def assert_bit_identical(reference, columnar):
    """The full equivalence contract between two runs of one spec."""
    assert columnar.kernel == "columnar"
    assert reference.kernel == "reference"
    assert columnar.rounds == reference.rounds
    assert columnar.names == reference.names
    assert columnar.crashed == reference.crashed
    assert columnar.failures == reference.failures
    assert columnar.last_round_named == reference.last_round_named
    assert columnar.result.decisions == reference.result.decisions
    assert columnar.result.halted == reference.result.halted
    assert columnar.result.participants == reference.result.participants
    # Per-round metrics, field for field (RoundMetrics is a dataclass).
    assert columnar.metrics.rounds == reference.metrics.rounds


class TestSupportedCells:
    @pytest.mark.parametrize("algorithm", BIL_ALGORITHMS)
    @pytest.mark.parametrize("adversary_key", FAILURE_FREE)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_failure_free_grid_bit_identical(self, algorithm, adversary_key, seed):
        for n in (1, 2, 7, 16, 33):
            reference = _run(algorithm, n, seed, "reference", adversary_key)
            columnar = _run(algorithm, n, seed, "columnar", adversary_key)
            assert_bit_identical(reference, columnar)

    @pytest.mark.parametrize("algorithm", BIL_ALGORITHMS)
    def test_halt_on_name_bit_identical(self, algorithm):
        for seed in (0, 3):
            reference = _run(algorithm, 24, seed, "reference", halt_on_name=True)
            columnar = _run(algorithm, 24, seed, "columnar", halt_on_name=True)
            assert_bit_identical(reference, columnar)

    @pytest.mark.parametrize("adversary_key", CRASHING)
    @pytest.mark.parametrize("halt", [False, True])
    def test_crash_grid_bit_identical(self, adversary_key, halt):
        """Certified crashing adversaries run on the columnar crash
        engine — partial deliveries, view-class splits and all."""
        for n in (1, 2, 9, 24):
            for seed in (0, 1):
                reference = _run(
                    "balls-into-leaves", n, seed, "reference", adversary_key,
                    halt_on_name=halt,
                )
                columnar = _run(
                    "balls-into-leaves", n, seed, "columnar", adversary_key,
                    halt_on_name=halt,
                )
                assert_bit_identical(reference, columnar)

    @pytest.mark.parametrize("algorithm", BIL_ALGORITHMS)
    def test_crash_variants_bit_identical(self, algorithm):
        reference = _run(algorithm, 16, 2, "reference", "random", halt_on_name=True)
        columnar = _run(algorithm, 16, 2, "columnar", "random", halt_on_name=True)
        assert_bit_identical(reference, columnar)

    def test_mid_path_crash_ghost_repro_bit_identical(self):
        """The lifecycle-bug repro itself runs on both kernels."""
        ids = sparse_ids(9)
        schedule = [ScheduledCrash(2, ids[0], receivers=[ids[1]])]
        runs = {
            kernel: run_renaming(
                "balls-into-leaves",
                ids,
                seed=1,
                adversary=ScheduledAdversary(schedule),
                halt_on_name=True,
                kernel=kernel,
            )
            for kernel in ("reference", "columnar")
        }
        assert_bit_identical(runs["reference"], runs["columnar"])

    def test_auto_selects_columnar_for_certified_adversaries(self):
        run = _run("balls-into-leaves", 16, 0, "auto", "random")
        assert run.kernel == "columnar"

    def test_faithful_view_mode_stays_on_reference(self):
        # Asking for the paper-verbatim per-ball store is asking for the
        # reference engine: auto must not silently swap in the fast path.
        run = _run("balls-into-leaves", 16, 5, "auto", view_mode="faithful")
        assert run.kernel == "reference"
        with pytest.raises(KernelUnsupported) as caught:
            _run("balls-into-leaves", 16, 5, "columnar", view_mode="faithful")
        assert "faithful" in str(caught.value)

    def test_string_ids_bit_identical(self):
        reference = run_renaming("balls-into-leaves", string_ids(13), seed=2,
                                 kernel="reference")
        columnar = run_renaming("balls-into-leaves", string_ids(13), seed=2,
                                kernel="columnar")
        assert_bit_identical(reference, columnar)

    def test_auto_selects_columnar_on_supported_cells(self):
        run = _run("balls-into-leaves", 16, 0, "auto")
        assert run.kernel == "columnar"

    def test_round_limit_raised_identically(self):
        for kernel in ("reference", "columnar"):
            with pytest.raises(RoundLimitExceeded) as caught:
                _run("balls-into-leaves", 32, 0, kernel, max_rounds=3)
            assert caught.value.limit == 3
            assert caught.value.alive == 32

    def test_bad_budget_rejected_identically(self):
        for kernel in ("reference", "columnar"):
            with pytest.raises(ConfigurationError):
                _run("balls-into-leaves", 8, 0, kernel, crash_budget=8)


class TestRejectedCells:
    """Unsupported cells: explicit rejection, reference fallback."""

    def test_uncertified_adversary_rejected_explicitly(self):
        """Custom adversary types may introspect process objects the
        fast path never materializes: explicit rejection, auto falls
        back to the reference engine."""
        with pytest.raises(KernelUnsupported) as caught:
            run_renaming(
                "balls-into-leaves",
                sparse_ids(16),
                adversary=UncertifiedAdversary(),
                kernel="columnar",
            )
        assert caught.value.kernel == "columnar"
        assert "certified" in caught.value.reason
        fallback = run_renaming(
            "balls-into-leaves",
            sparse_ids(16),
            adversary=UncertifiedAdversary(),
            kernel="auto",
        )
        assert fallback.kernel == "reference"

    def test_no_failures_subclass_is_not_certified(self):
        class SneakyNoFailures(NoFailures):
            def plan(self, ctx):
                return {}

        with pytest.raises(KernelUnsupported):
            run_renaming(
                "balls-into-leaves",
                sparse_ids(8),
                adversary=SneakyNoFailures(),
                kernel="columnar",
            )

    def test_flood_rejected_explicitly(self):
        with pytest.raises(KernelUnsupported):
            _run("flood", 8, 0, "columnar")
        assert _run("flood", 8, 0, "auto").kernel == "reference"

    def test_trace_rejected_explicitly(self):
        with pytest.raises(KernelUnsupported):
            run_renaming(
                "balls-into-leaves", sparse_ids(8), trace=Trace(), kernel="columnar"
            )
        run = run_renaming(
            "balls-into-leaves", sparse_ids(8), trace=Trace(), kernel="auto"
        )
        assert run.kernel == "reference"

    def test_phase_stats_rejected_explicitly(self):
        with pytest.raises(KernelUnsupported):
            run_renaming(
                "balls-into-leaves",
                sparse_ids(8),
                collect_phase_stats=True,
                kernel="columnar",
            )
        run = run_renaming(
            "balls-into-leaves", sparse_ids(8), collect_phase_stats=True, kernel="auto"
        )
        assert run.kernel == "reference"
        assert run.phase_stats  # the fallback still collects them

    def test_check_invariants_runs_columnar_with_cheap_monitors(self):
        # check_invariants used to force the reference engine; it now
        # routes to the columnar invariant monitors instead.
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(8),
            check_invariants=True,
            kernel="columnar",
        )
        assert run.monitor == "cheap"
        assert run.violations == []
        auto = run_renaming(
            "balls-into-leaves", sparse_ids(8), check_invariants=True, kernel="auto"
        )
        assert auto.kernel != "reference"

    def test_full_monitor_rejected_explicitly(self):
        # monitor="full" audits the reference engine's instrumented
        # movement and stays reference-only.
        with pytest.raises(KernelUnsupported):
            run_renaming(
                "balls-into-leaves",
                sparse_ids(8),
                monitor="full",
                kernel="columnar",
            )
        run = run_renaming(
            "balls-into-leaves", sparse_ids(8), monitor="full", kernel="auto"
        )
        assert run.kernel == "reference"
        assert run.monitor == "full"
        assert run.violations == []

    def test_unknown_kernel_name(self):
        with pytest.raises(ConfigurationError):
            _run("balls-into-leaves", 8, 0, "simd")

    def test_rejection_reason_reaches_select_kernel(self):
        request = KernelRequest(
            algorithm="flood",
            ids=tuple(sparse_ids(4)),
            seed=0,
            policy=None,
            crash_budget=3,
            max_rounds=20,
        )
        with pytest.raises(KernelUnsupported) as caught:
            select_kernel("columnar", request)
        assert "flood" in str(caught.value)
        assert select_kernel("auto", request).name == "reference"
        assert select_kernel("reference", request).name == "reference"


class TestBatchEquivalence:
    """The batch engine produces identical cells on either kernel."""

    def test_matrix_cells_identical_across_kernels(self):
        batches = {}
        for kernel in ("reference", "columnar"):
            matrix = ScenarioMatrix.build(
                BIL_ALGORITHMS,
                [8, 16],
                ["none"],
                trials=4,
                base_seed=11,
                kernel=kernel,
            )
            batches[kernel] = run_batch(matrix)
        for ref, col in zip(
            batches["reference"].trials, batches["columnar"].trials
        ):
            assert ref.spec.cell == col.spec.cell
            assert ref.rounds == col.rounds
            assert ref.failures == col.failures
            assert ref.messages_sent == col.messages_sent
            assert ref.messages_delivered == col.messages_delivered
            assert ref.last_round_named == col.last_round_named
            assert ref.names == col.names
            assert ref.kernel != col.kernel  # both pinned, different engines

    def test_auto_matrix_mixes_kernels_per_cell(self):
        matrix = ScenarioMatrix.build(
            ["balls-into-leaves", "flood"], [8], ["none"], trials=2, base_seed=0
        )
        batch = run_batch(matrix)
        kernels = {trial.spec.algorithm: trial.kernel for trial in batch.trials}
        # Failure-free BiL cells stack on the vectorized engine when
        # NumPy is available and fall back to columnar otherwise; flood
        # is not BiL-based and stays on the reference engine either way.
        from repro.sim.vectorized import vectorized_available

        expected_bil = "vectorized" if vectorized_available() else "columnar"
        assert kernels == {"balls-into-leaves": expected_bil, "flood": "reference"}

    def test_unknown_kernel_rejected_at_build(self):
        with pytest.raises(ConfigurationError):
            ScenarioMatrix.build(
                ["balls-into-leaves"], [8], ["none"], trials=1, kernel="quantum"
            )


@pytest.mark.tier2
class TestDeepDifferential:
    """Nightly: a larger grid, deeper sizes, more seeds."""

    @pytest.mark.parametrize("algorithm", BIL_ALGORITHMS)
    def test_large_grid_bit_identical(self, algorithm):
        for n in (64, 129, 512):
            for seed in range(5):
                for halt in (False, True):
                    reference = _run(
                        algorithm, n, seed, "reference", halt_on_name=halt
                    )
                    columnar = _run(
                        algorithm, n, seed, "columnar", halt_on_name=halt
                    )
                    assert_bit_identical(reference, columnar)

    @pytest.mark.parametrize("algorithm", BIL_ALGORITHMS)
    @pytest.mark.parametrize("adversary_key", CRASHING)
    def test_crash_halt_grid_bit_identical(self, algorithm, adversary_key):
        """Nightly crash x halt-on-name grid: the full certified
        adversary suite against every BiL algorithm on both kernels."""
        for n in (33, 64, 129):
            for seed in range(3):
                for halt in (False, True):
                    reference = _run(
                        algorithm, n, seed, "reference", adversary_key,
                        halt_on_name=halt,
                    )
                    columnar = _run(
                        algorithm, n, seed, "columnar", adversary_key,
                        halt_on_name=halt,
                    )
                    assert_bit_identical(reference, columnar)
