"""The non-renaming workloads on the TrialSpec rails.

Section 1-2 of the paper frames Balls-into-Leaves against two related
workloads: parallel load balancing (fast, but assumes consistent bin
views) and approximate agreement (the substrate of the order-preserving
renaming it cites).  Both now run through the same registry, kernels,
batch grid, and hunts as the renaming algorithms, so the fault-injection
layer can measure exactly the claims the paper makes about them —
parallel retry loses tightness when views diverge, approximate agreement
degrades gracefully.
"""

from __future__ import annotations

import pytest

from repro.adversary import RandomCrashAdversary, TargetedOmissionAdversary
from repro.errors import ConfigurationError, KernelUnsupported, SpecViolation
from repro.ids import sparse_ids
from repro.sim.batch import ScenarioMatrix, run_batch
from repro.sim.runner import ALGORITHMS, WORKLOADS, run_renaming


class TestWorkloadRegistry:
    def test_algorithms_is_the_policy_projection(self):
        assert set(ALGORITHMS) == set(WORKLOADS)
        for name, workload in WORKLOADS.items():
            assert ALGORITHMS[name] == workload.policy

    def test_new_workloads_are_registered(self):
        assert WORKLOADS["approx-agreement"].policy is None
        assert not WORKLOADS["approx-agreement"].renaming
        assert WORKLOADS["parallel-retry"].policy is None
        assert WORKLOADS["parallel-retry"].renaming

    def test_unknown_algorithm_still_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            run_renaming("nope", sparse_ids(4))


class TestApproxAgreementWorkload:
    def test_failure_free_reaches_epsilon_agreement(self):
        run = run_renaming("approx-agreement", sparse_ids(16), seed=3)
        values = list(run.names.values())
        assert len(values) == 16
        assert max(values) - min(values) <= 1.0
        assert run.kernel == "reference"

    def test_renaming_check_is_skipped_for_real_valued_decisions(self):
        # check=True is the default; a renaming workload deciding floats
        # would raise SpecViolation here.
        run = run_renaming("approx-agreement", sparse_ids(8), seed=0, check=True)
        assert all(isinstance(v, float) for v in run.names.values())

    def test_crashes_within_budget_keep_the_guarantee(self):
        run = run_renaming(
            "approx-agreement",
            sparse_ids(16),
            seed=3,
            adversary=RandomCrashAdversary(0.1, seed=5),
            crash_budget=4,
        )
        values = list(run.names.values())
        assert run.failures <= 4
        assert max(values) - min(values) <= 1.0

    def test_columnar_pin_rejects_by_name(self):
        with pytest.raises(KernelUnsupported, match="approx-agreement"):
            run_renaming(
                "approx-agreement", sparse_ids(8), seed=0, kernel="columnar"
            )


class TestParallelRetryWorkload:
    def test_failure_free_is_a_tight_renaming(self):
        run = run_renaming("parallel-retry", sparse_ids(16), seed=3)
        names = list(run.names.values())
        assert sorted(set(names)) == names or len(set(names)) == 16
        assert all(0 <= name < 16 for name in names)
        # The paper's point of comparison: the scheme is *fast* when
        # views are consistent.
        assert run.rounds <= 16

    def test_check_renaming_applies(self):
        # The workload is a renaming: the checker runs and passes.
        run_renaming("parallel-retry", sparse_ids(8), seed=1, check=True)

    def test_omission_divergence_breaks_tightness_honestly(self):
        # Silencing two balls through the run makes views diverge —
        # precisely the consistency assumption the paper says crash-prone
        # systems cannot provide.  The checker calls the duplicate.
        with pytest.raises(SpecViolation, match="uniqueness"):
            run_renaming(
                "parallel-retry",
                sparse_ids(16),
                seed=3,
                adversary=TargetedOmissionAdversary(count=2, rounds=(1, 6)),
            )

    def test_seed_changes_the_assignment(self):
        a = run_renaming("parallel-retry", sparse_ids(16), seed=1).names
        b = run_renaming("parallel-retry", sparse_ids(16), seed=2).names
        assert a != b


class TestScenarioMatrixRouting:
    def test_grid_runs_both_workloads_under_fault_adversaries(self):
        matrix = ScenarioMatrix.build(
            ["approx-agreement", "parallel-retry"],
            [8],
            adversaries=["none", "omission:p=0.1,first=2,last=6"],
            trials=2,
            base_seed=5,
            check=False,
        )
        batch = run_batch(matrix.expand())
        assert len(batch.trials) == 8
        assert all(trial.error is None for trial in batch.trials)
        omitted = [
            trial
            for trial in batch.trials
            if trial.spec.adversary.name == "omission"
        ]
        assert any(trial.omissions > 0 for trial in omitted)


class TestApproxAgreementHuntSmoke:
    def test_mixed_family_hunt_runs_on_the_reference_rails(self):
        from repro.search import HuntConfig, run_hunt

        config = HuntConfig(
            algorithm="approx-agreement",
            n=8,
            objective="rounds",
            budget=24,
            seed=3,
            fault_family="mixed",
        )
        result = run_hunt(config, strategy="hillclimb")
        assert result.best.score >= 1.0
        assert result.best.best_result.error is None
