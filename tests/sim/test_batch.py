"""Unit tests for the parallel trial engine (repro.sim.batch)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.batch import (
    AdversarySpec,
    CellKey,
    MultiprocessingExecutor,
    ScenarioMatrix,
    SerialExecutor,
    TrialSpec,
    as_executor,
    derived_trial_seed,
    legacy_trial_seeds,
    run_batch,
    run_trial,
)


class TestAdversarySpec:
    def test_default_is_no_failures(self):
        spec = AdversarySpec()
        assert spec.key == "none"
        assert spec.build(7) is None

    def test_of_validates_name(self):
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            AdversarySpec.of("byzantine")

    def test_params_are_sorted_and_shown_in_key(self):
        spec = AdversarySpec.of("random", rate=0.2, delivery="uniform")
        assert spec.params == (("delivery", "uniform"), ("rate", 0.2))
        assert spec.key == "random:delivery=uniform,rate=0.2"

    def test_label_overrides_key(self):
        spec = AdversarySpec.of("random", rate=0.05, label="random 5%")
        assert spec.key == "random 5%"

    def test_parse_literal_values(self):
        spec = AdversarySpec.parse("random:rate=0.2,delivery=split")
        assert dict(spec.params) == {"rate": 0.2, "delivery": "split"}
        adversary = spec.build(3)
        assert type(adversary).__name__ == "RandomCrashAdversary"

    def test_parse_plain_name(self):
        assert AdversarySpec.parse("sandwich").name == "sandwich"

    def test_parse_rejects_malformed_params(self):
        with pytest.raises(ConfigurationError, match="bad adversary parameter"):
            AdversarySpec.parse("random:rate")

    def test_build_rejects_unknown_params(self):
        spec = AdversarySpec.of("sandwich", not_a_param=1)
        with pytest.raises(ConfigurationError, match="bad parameters"):
            spec.build(0)

    def test_builders_seeded_per_trial(self):
        spec = AdversarySpec.of("random", rate=1.0, delivery="uniform")
        first = spec.build(1)
        second = spec.build(1)
        assert first is not second
        assert first.rng.random() == second.rng.random()


class TestScenarioMatrix:
    def test_expansion_covers_the_grid_in_order(self):
        matrix = ScenarioMatrix.build(
            ["balls-into-leaves", "flood"], [4, 8], ["none", "sandwich"], trials=2
        )
        specs = matrix.expand()
        assert len(specs) == len(matrix) == 2 * 2 * 2 * 2
        assert specs[0].cell == CellKey("balls-into-leaves", 4, "none")
        # Trials of a cell are adjacent and seed-ascending.
        assert specs[0].seed < specs[1].seed
        assert specs[1].cell == specs[0].cell
        assert specs[-1].cell == CellKey("flood", 8, "sandwich")

    def test_legacy_seed_schedule_matches_historical_loops(self):
        matrix = ScenarioMatrix.build(["flood"], [4], trials=3, base_seed=9)
        assert [spec.seed for spec in matrix.expand()] == legacy_trial_seeds(9, 3)
        assert legacy_trial_seeds(9, 3) == [9 * 100_003 + t for t in range(3)]

    def test_derived_seeds_differ_across_cells(self):
        matrix = ScenarioMatrix.build(
            ["balls-into-leaves", "flood"], [4], trials=2, seed_mode="derived"
        )
        seeds = [spec.seed for spec in matrix.expand()]
        assert len(set(seeds)) == len(seeds)
        assert seeds[0] == derived_trial_seed(0, "balls-into-leaves", 4, "none", 0)

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            ScenarioMatrix.build(["quantum"], [4])

    def test_rejects_empty_dimensions_and_bad_values(self):
        with pytest.raises(ConfigurationError):
            ScenarioMatrix.build([], [4])
        with pytest.raises(ConfigurationError):
            ScenarioMatrix.build(["flood"], [0])
        with pytest.raises(ConfigurationError):
            ScenarioMatrix.build(["flood"], [4], trials=0)
        with pytest.raises(ConfigurationError, match="seed mode"):
            ScenarioMatrix.build(["flood"], [4], seed_mode="lunar")


class TestRunTrial:
    def test_trial_result_carries_scalars_and_names(self):
        result = run_trial(TrialSpec("balls-into-leaves", 8, seed=5))
        assert result.rounds > 0
        assert result.failures == 0
        assert result.messages_sent > 0
        assert result.messages_delivered >= result.messages_sent
        names = [name for _, name in result.names]
        assert sorted(names) == list(range(8))

    def test_trial_is_deterministic(self):
        spec = TrialSpec("balls-into-leaves", 8, seed=5, adversary=AdversarySpec.of("random", rate=0.2))
        assert run_trial(spec) == run_trial(spec)


class TestExecutors:
    def test_as_executor_coercions(self):
        assert isinstance(as_executor(None), SerialExecutor)
        assert isinstance(as_executor("serial"), SerialExecutor)
        assert isinstance(as_executor("process"), MultiprocessingExecutor)
        assert isinstance(as_executor(None, workers=4), MultiprocessingExecutor)
        custom = SerialExecutor()
        assert as_executor(custom) is custom
        with pytest.raises(ConfigurationError, match="unknown executor"):
            as_executor("gpu")

    def test_worker_default_and_validation(self):
        assert MultiprocessingExecutor().workers >= 1
        with pytest.raises(ConfigurationError):
            MultiprocessingExecutor(0)

    def test_single_worker_falls_back_to_serial(self):
        matrix = ScenarioMatrix.build(["flood"], [4], trials=2)
        serial = SerialExecutor().run(matrix.expand())
        assert MultiprocessingExecutor(1).run(matrix.expand()) == serial


class TestBatchResult:
    @pytest.fixture(scope="class")
    def batch(self):
        matrix = ScenarioMatrix.build(
            ["balls-into-leaves", "flood"], [4, 8], ["none", "sandwich"], trials=3
        )
        return run_batch(matrix)

    def test_cells_preserve_grid_order(self, batch):
        keys = list(batch.cells())
        assert keys[0] == CellKey("balls-into-leaves", 4, "none")
        assert len(keys) == 8
        assert all(len(cell) == 3 for cell in batch.cells().values())

    def test_cell_lookup_and_stats(self, batch):
        cell = batch.cell("flood", 8, "sandwich")
        assert len(cell) == 3
        stats = batch.stats("flood", 8, "sandwich")
        assert stats.count == 3
        assert stats.rounds.mean == sum(r.rounds for r in cell) / 3

    def test_unknown_cell_raises(self, batch):
        with pytest.raises(ConfigurationError, match="no trials"):
            batch.cell("flood", 1024)

    def test_to_table_has_one_row_per_cell(self, batch):
        table = batch.to_table("demo")
        assert len(table.rows) == 8
        rendered = table.render()
        assert "balls-into-leaves" in rendered
        assert "sandwich" in rendered
