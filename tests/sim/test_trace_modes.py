"""Differential suite for the ``trace={off,cheap,full}`` knob.

The contract under test: a ``full`` reference trace and a ``cheap``
fast-path trace of the *same* execution project identically onto the
shared event schema (:func:`repro.sim.trace.shared_events`), and turning
tracing on never perturbs the run itself — ``trace="off"`` and
``trace="cheap"`` produce byte-identical results on every kernel.
Plus the persistence layer: jsonl (and npz, NumPy installs) round-trips
preserve every event, and a run that dies mid-flight still hands its
partial trace to ``capture_errors`` rows.
"""

from __future__ import annotations

import pytest

from repro.adversary.random_crash import RandomCrashAdversary
from repro.core.mt19937 import HAVE_NUMPY
from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.ids import sparse_ids
from repro.search.schedule import CrashEvent, Schedule
from repro.sim.batch import TrialSpec, run_trial
from repro.sim.runner import ALGORITHMS, run_renaming
from repro.sim.trace import (
    SHARED_EVENT_KINDS,
    TRACE_MODES,
    Trace,
    check_trace_mode,
    read_trace,
    shared_events,
    trace_filename,
    write_trace,
)

BIL_ALGORITHMS = sorted(name for name, policy in ALGORITHMS.items() if policy)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")


def _crash_schedule(n):
    return Schedule.of(
        n, [CrashEvent(1, 0, (1,)), CrashEvent(2, min(2, n - 1))]
    )


def _omit_schedule(n):
    return Schedule.of(
        n,
        [
            CrashEvent(1, 1 % n, (2 % n,), "omit"),
            CrashEvent(3, 0, (), "omit"),
        ],
    )


#: The grid's adversary axis: the empty cell, both scheduled fault
#: families (columnar-certified), and a seeded random crasher.
ADVERSARIES = {
    "none": lambda n, seed: None,
    "random-crash": lambda n, seed: RandomCrashAdversary(0.15, seed=seed),
    "crash-schedule": lambda n, seed: _crash_schedule(n).compile(sparse_ids(n)),
    "omission-schedule": lambda n, seed: _omit_schedule(n).compile(sparse_ids(n)),
}


def _run(algorithm, n, seed, kernel, adversary_key="none", **kwargs):
    return run_renaming(
        algorithm,
        sparse_ids(n),
        seed=seed,
        adversary=ADVERSARIES[adversary_key](n, seed),
        kernel=kernel,
        **kwargs,
    )


class TestSharedSchemaEquivalence:
    """Reference ``full`` == columnar ``cheap`` under ``shared_events``."""

    @pytest.mark.parametrize("algorithm", BIL_ALGORITHMS)
    @pytest.mark.parametrize("adversary_key", sorted(ADVERSARIES))
    @pytest.mark.parametrize("seed", [0, 3])
    def test_full_vs_cheap_grid(self, algorithm, adversary_key, seed):
        for n in (2, 9, 16):
            # check=False: omission cells can legitimately violate the
            # spec (that finding is the point of the fault family); this
            # suite compares event streams, not correctness.
            full = _run(algorithm, n, seed, "reference", adversary_key,
                        trace="full", check=False)
            cheap = _run(algorithm, n, seed, "columnar", adversary_key,
                         trace="cheap", check=False)
            assert full.trace_mode == "full" and full.kernel == "reference"
            assert cheap.trace_mode == "cheap" and cheap.kernel == "columnar"
            projected = shared_events(full.trace)
            assert projected == shared_events(cheap.trace)
            # The projection is substantive: one round row per round.
            assert [e for e in projected if e[1] == "round"]
            assert {kind for _, kind, _ in projected} <= SHARED_EVENT_KINDS

    def test_halt_events_agree_under_halt_on_name(self):
        full = _run("balls-into-leaves", 12, 1, "reference", "random-crash",
                    trace="full", halt_on_name=True)
        cheap = _run("balls-into-leaves", 12, 1, "columnar", "random-crash",
                     trace="cheap", halt_on_name=True)
        assert shared_events(full.trace) == shared_events(cheap.trace)
        assert [e for e in shared_events(full.trace) if e[1] == "halt"]

    def test_omission_events_reach_both_traces(self):
        full = _run("balls-into-leaves", 8, 0, "reference",
                    "omission-schedule", trace="full", check=False)
        cheap = _run("balls-into-leaves", 8, 0, "columnar",
                     "omission-schedule", trace="cheap", check=False)
        omits = [e for e in shared_events(full.trace) if e[1] == "omit"]
        assert omits
        assert omits == [
            e for e in shared_events(cheap.trace) if e[1] == "omit"
        ]

    @needs_numpy
    @pytest.mark.parametrize("adversary_key", ["none", "random-crash"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_full_vs_vectorized_cheap(self, adversary_key, seed):
        full = _run("balls-into-leaves", 16, seed, "reference", adversary_key,
                    trace="full")
        cheap = _run("balls-into-leaves", 16, seed, "vectorized",
                     adversary_key, trace="cheap")
        assert cheap.kernel == "vectorized"
        assert shared_events(full.trace) == shared_events(cheap.trace)

    @needs_numpy
    def test_columnar_vs_vectorized_cheap_extras(self):
        """The cheap extras agree across fast kernels too: ``name``
        events are identical; ``pos`` snapshots are columnar-only."""
        columnar = _run("balls-into-leaves", 16, 2, "columnar",
                        "random-crash", trace="cheap")
        stacked = _run("balls-into-leaves", 16, 2, "vectorized",
                       "random-crash", trace="cheap")

        def names(run):
            return sorted(
                (e.round_no, tuple(sorted(e.data.items())))
                for e in run.trace.events("name")
            )

        assert names(columnar) == names(stacked)
        assert columnar.trace.events("pos")
        assert not stacked.trace.events("pos")


class TestTraceNeverPerturbs:
    """Observation modes must not change what is observed."""

    @pytest.mark.parametrize("kernel,mode", [
        ("reference", "full"),
        ("reference", "cheap"),
        ("columnar", "cheap"),
        pytest.param("vectorized", "cheap", marks=needs_numpy),
    ])
    def test_trace_on_off_bit_identical(self, kernel, mode):
        off = _run("balls-into-leaves", 16, 5, kernel, "random-crash",
                   trace="off", halt_on_name=True)
        on = _run("balls-into-leaves", 16, 5, kernel, "random-crash",
                  trace=mode, halt_on_name=True)
        assert off.trace is None and off.trace_mode == "off"
        assert on.trace is not None
        assert on.names == off.names
        assert on.rounds == off.rounds
        assert on.crashed == off.crashed
        assert on.failures == off.failures
        assert on.last_round_named == off.last_round_named
        assert on.metrics.rounds == off.metrics.rounds

    def test_run_trial_trace_on_off_identical(self):
        spec = TrialSpec(
            algorithm="balls-into-leaves",
            n=12,
            seed=4,
            adversary=_crash_schedule(12).spec(),
        )
        off = run_trial(spec)
        on = run_trial(TrialSpec(**{**spec.__dict__, "trace": "cheap"}))
        assert off.trace is None
        assert on.trace is not None and len(on.trace)
        for fieldname in (
            "rounds", "failures", "messages_sent", "messages_delivered",
            "last_round_named", "names", "kernel", "error", "violations",
        ):
            assert getattr(on, fieldname) == getattr(off, fieldname)

    def test_spec_digest_ignores_trace_mode(self):
        spec = TrialSpec(algorithm="balls-into-leaves", n=8, seed=0)
        traced = TrialSpec(
            algorithm="balls-into-leaves", n=8, seed=0, trace="cheap"
        )
        assert spec.digest() == traced.digest()


class TestModeSelection:
    def test_mode_constants(self):
        assert TRACE_MODES == ("off", "cheap", "full")
        for mode in TRACE_MODES:
            assert check_trace_mode(mode) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown trace mode"):
            run_renaming("balls-into-leaves", sparse_ids(4), trace="verbose")

    def test_legacy_sink_pins_reference_full(self):
        sink = Trace()
        run = run_renaming(
            "balls-into-leaves", sparse_ids(8), seed=1, trace=sink
        )
        assert run.trace is sink
        assert run.trace_mode == "full"
        assert run.kernel == "reference"
        assert len(sink)

    def test_full_mode_falls_back_to_reference_under_auto(self):
        run = run_renaming(
            "balls-into-leaves", sparse_ids(8), seed=1, trace="full"
        )
        assert run.kernel == "reference"
        cheap = run_renaming(
            "balls-into-leaves", sparse_ids(8), seed=1, trace="cheap"
        )
        assert cheap.kernel != "reference"
        assert shared_events(run.trace) == shared_events(cheap.trace)


class TestTraceFiles:
    def _sample_trace(self):
        return _run("balls-into-leaves", 9, 2, "columnar", "crash-schedule",
                    trace="cheap")

    def test_filename_is_content_addressed(self):
        spec = TrialSpec(algorithm="balls-into-leaves", n=9, seed=2)
        assert trace_filename(spec.digest()) == f"trace-{spec.digest()}.jsonl"
        assert trace_filename("abc", fmt="npz") == "trace-abc.npz"

    def test_jsonl_round_trip(self, tmp_path):
        run = self._sample_trace()
        path = str(tmp_path / trace_filename("deadbeef"))
        write_trace(run.trace, path, digest="deadbeef", meta={"n": 9})
        header, loaded = read_trace(path)
        assert header["format"] == "repro-trace/1"
        assert header["digest"] == "deadbeef"
        assert header["meta"] == {"n": 9}
        assert loaded == run.trace

    @needs_numpy
    def test_npz_round_trip(self, tmp_path):
        run = self._sample_trace()
        path = str(tmp_path / trace_filename("deadbeef", fmt="npz"))
        write_trace(run.trace, path, digest="deadbeef")
        header, loaded = read_trace(path)
        assert header["digest"] == "deadbeef"
        assert loaded == run.trace

    def test_non_trace_file_rejected(self, tmp_path):
        path = str(tmp_path / "not-a-trace.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"format": "something-else"}\n')
        with pytest.raises(ConfigurationError, match="not a repro-trace/1"):
            read_trace(path)

    def test_empty_trace_file_rejected(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w", encoding="utf-8").close()
        with pytest.raises(ConfigurationError, match="empty trace file"):
            read_trace(path)


@needs_numpy
class TestLazyStackedTrace:
    """Stacked cheap traces are lazy views; reads and pickles agree."""

    def test_pickle_round_trip_materializes(self):
        import pickle

        run = _run("balls-into-leaves", 16, 2, "vectorized", "random-crash",
                   trace="cheap")
        clone = pickle.loads(pickle.dumps(run.trace))
        assert clone == run.trace
        assert clone.events("round")

    def test_repeated_reads_are_stable(self):
        run = _run("balls-into-leaves", 16, 2, "vectorized", trace="cheap")
        assert run.trace.events() == run.trace.events()
        assert len(run.trace) == len(run.trace.events())

    def test_process_executor_rows_carry_equal_traces(self):
        from repro.sim.batch import ScenarioMatrix, run_batch

        matrix = ScenarioMatrix.build(
            ["balls-into-leaves"], [16], ("none",),
            trials=3, base_seed=1, kernel="vectorized", trace="cheap",
        )
        serial = run_batch(matrix, executor="serial")
        process = run_batch(matrix, executor="process", workers=2)
        serial_traces = [t.trace for t in serial.trials]
        assert all(trace is not None for trace in serial_traces)
        assert serial_traces == [t.trace for t in process.trials]


class TestPartialTraceOnError:
    def test_round_limit_error_carries_partial_trace(self):
        with pytest.raises(RoundLimitExceeded) as excinfo:
            run_renaming(
                "balls-into-leaves",
                sparse_ids(16),
                seed=0,
                kernel="columnar",
                trace="cheap",
                max_rounds=2,
            )
        partial = excinfo.value.partial_trace
        assert partial is not None
        assert {e.round_no for e in partial.events("round")} == {1, 2}

    def test_capture_errors_row_keeps_events(self):
        # One dropped hello splits ball 1's view of the tree (the shape
        # the omission hunts mine); the run dies on a check failure, and
        # the captured row must still carry every event recorded so far.
        schedule = Schedule.of(
            16, [CrashEvent(1, 1, (11,), "omit")]
        )
        spec = TrialSpec(
            algorithm="balls-into-leaves",
            n=16,
            seed=7,
            adversary=schedule.spec(),
            capture_errors=True,
            trace="cheap",
        )
        result = run_trial(spec)
        assert result.error is not None
        assert result.trace is not None
        assert result.trace.events("omit")
        assert result.trace.events("round")
