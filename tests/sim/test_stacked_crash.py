"""Differential suite: the trial-stacked crash engine.

The stacked crash engine extends the PR-4 failure-free stack with
per-trial status columns, per-round crash masks, and an exact
reproduction of the columnar engine's AdversaryContext/clamp protocol —
so whole crash cells (certified adversaries, halt-on-name, schedule
candidates from the hunt) run as one ``(T*n,)`` pass.  The contract is
inherited unchanged: every trial of a stacked crash cell must be
**bit-for-bit identical** to running it alone on the columnar (and
hence reference) kernel — same rounds, names, failures, message
counts, error strings, and metrics rows.

Thread-count invariance rides along: the seeding/twist fanout
partitions stream columns contiguously and never shares one, so any
``REPRO_VEC_THREADS`` produces byte-identical draws and therefore
byte-identical trials.
"""

from __future__ import annotations

import itertools

import pytest

from repro.errors import RoundLimitExceeded
from repro.ids import sparse_ids
from repro.search.schedule import CrashEvent, Schedule
from repro.sim.batch import (
    AdversarySpec,
    TrialSpec,
    plan_tasks,
    run_batch,
    run_trial,
    _run_crash_cell,
)
from repro.sim.runner import run_renaming
from repro.sim.vectorized import run_stacked_cell, vectorized_available

needs_numpy = pytest.mark.skipif(
    not vectorized_available(), reason="numpy not installed (the .[fast] extra)"
)

#: Every certified crashing-adversary family, in spec-string form.
ADVERSARIES = (
    "random:rate=0.3",
    "sandwich",
    "half-split:victims_per_round=2,last_round=9",
    "targeted:every_k_phases=1",
)
ALGORITHMS = ("balls-into-leaves", "rank-descent", "leftmost", "early-terminating")

COMPARED_FIELDS = (
    "rounds",
    "failures",
    "messages_sent",
    "messages_delivered",
    "last_round_named",
    "names",
    "error",
    "violations",
)


def _crash_specs(algorithm, n, seeds, adversary, *, halt_on_name=False):
    return [
        TrialSpec(
            algorithm=algorithm,
            n=n,
            seed=seed,
            adversary=(
                adversary
                if isinstance(adversary, AdversarySpec)
                else AdversarySpec.parse(adversary)
            ),
            halt_on_name=halt_on_name,
            check=True,
            kernel="auto",
            capture_errors=True,
        )
        for seed in seeds
    ]


def assert_stack_matches_per_trial(specs):
    """The stacked cell's rows == the per-trial columnar/auto rows."""
    per_trial = [run_trial(spec) for spec in specs]
    adversaries = [spec.adversary.build(spec.seed) for spec in specs]
    stacked = _run_crash_cell(specs, adversaries)
    assert len(stacked) == len(per_trial)
    for want, got in zip(per_trial, stacked):
        for field in COMPARED_FIELDS:
            assert getattr(got, field) == getattr(want, field), (
                field,
                want.spec,
            )


@needs_numpy
class TestStackedCrashDifferential:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("adversary", ADVERSARIES)
    def test_grid_bit_identical(self, algorithm, adversary):
        for n, halt in itertools.product((5, 13), (False, True)):
            assert_stack_matches_per_trial(
                _crash_specs(
                    algorithm, n, [1000 + s for s in range(3)], adversary,
                    halt_on_name=halt,
                )
            )

    def test_mined_schedule_stacks_to_nine_rounds(self):
        """PR 5's mined counterexample, stacked: same 9-round stall."""
        mined = Schedule.of(16, [CrashEvent(3, 6, ())]).spec()
        seeds = [4301463716303469878 + k for k in range(4)]
        specs = _crash_specs("balls-into-leaves", 16, seeds, mined)
        assert_stack_matches_per_trial(specs)
        adversaries = [spec.adversary.build(spec.seed) for spec in specs]
        rows = _run_crash_cell(specs, adversaries)
        assert rows[0].rounds == 9

    def test_partial_receiver_schedules_bit_identical(self):
        schedule = Schedule.of(
            12,
            [
                CrashEvent(2, 3, (0, 1, 5)),
                CrashEvent(5, 7, (2,)),
                CrashEvent(4, 1, ()),
            ],
        ).spec()
        for algorithm in ALGORITHMS:
            assert_stack_matches_per_trial(
                _crash_specs(algorithm, 12, [77 + k for k in range(4)], schedule)
            )

    def test_pinned_vectorized_crash_run_matches_columnar(self):
        schedule = Schedule.of(
            12, [CrashEvent(2, 3, (0, 1, 5)), CrashEvent(5, 7, (2,))]
        ).spec()
        for seed in (11, 13):
            vectorized = run_renaming(
                "balls-into-leaves", sparse_ids(12), seed=seed,
                adversary=schedule.build(seed), kernel="vectorized",
            )
            columnar = run_renaming(
                "balls-into-leaves", sparse_ids(12), seed=seed,
                adversary=schedule.build(seed), kernel="columnar",
            )
            assert vectorized.kernel == "vectorized"
            assert columnar.kernel == "columnar"
            assert vectorized.rounds == columnar.rounds
            assert vectorized.names == columnar.names
            assert vectorized.crashed == columnar.crashed
            assert vectorized.last_round_named == columnar.last_round_named
            assert vectorized.result == columnar.result

    def test_round_limit_message_parity(self):
        """Overruns raise the same RoundLimitExceeded text as columnar."""
        schedule = Schedule.of(
            12, [CrashEvent(2, 3, (0, 1, 5)), CrashEvent(5, 7, (2,))]
        ).spec()
        messages = {}
        for kernel in ("vectorized", "columnar"):
            with pytest.raises(RoundLimitExceeded) as caught:
                run_renaming(
                    "balls-into-leaves", sparse_ids(12), seed=11,
                    adversary=schedule.build(11), kernel=kernel, max_rounds=3,
                )
            messages[kernel] = str(caught.value)
        assert messages["vectorized"] == messages["columnar"]

    def test_overrun_is_isolated_per_trial(self):
        """One trial hitting the limit must not distort its stack-mates."""
        mined = Schedule.of(16, [CrashEvent(3, 6, ())]).spec()
        seeds = [4301463716303469878, 4301463716303469879]
        adversaries = [mined.build(seed) for seed in seeds]
        cell = run_stacked_cell(
            sparse_ids(16), seeds, policy="random", max_rounds=8,
            adversaries=adversaries,
        )
        expected = []
        for seed in seeds:
            try:
                run = run_renaming(
                    "balls-into-leaves", sparse_ids(16), seed=seed,
                    adversary=mined.build(seed), kernel="columnar", max_rounds=8,
                )
                expected.append(("done", run.rounds))
            except RoundLimitExceeded as error:
                expected.append(("overrun", str(error)))
        got = [
            ("overrun", str(RoundLimitExceeded(cell.limit, int(cell.running_at_limit[t]))))
            if bool(cell.overrun[t])
            else ("done", int(cell.rounds[t]))
            for t in range(cell.trials)
        ]
        assert got == expected
        assert any(flag for flag, _ in [(o, None) for o in cell.overrun.tolist()])


@needs_numpy
class TestCrashCellPlanning:
    def test_small_crash_cells_respect_the_stream_floor(self, monkeypatch):
        """Below REPRO_VEC_CRASH_MIN_STREAMS the per-trial path stays."""
        specs = _crash_specs(
            "balls-into-leaves", 9, [40 + k for k in range(8)],
            "random:rate=0.25",
        )
        assert plan_tasks(specs) == specs  # 72 streams < the default floor
        monkeypatch.setenv("REPRO_VEC_CRASH_MIN_STREAMS", "72")
        tasks = plan_tasks(specs)
        assert len(tasks) == 1 and isinstance(tasks[0], tuple)
        # Failure-free cells take no floor.
        free = [
            TrialSpec(algorithm="balls-into-leaves", n=9, seed=40 + k)
            for k in range(8)
        ]
        monkeypatch.delenv("REPRO_VEC_CRASH_MIN_STREAMS")
        assert len(plan_tasks(free)) == 1

    def test_run_batch_auto_stacks_crash_cells(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_CRASH_MIN_STREAMS", "0")
        specs = _crash_specs(
            "balls-into-leaves", 9, [40 + k for k in range(8)],
            "random:rate=0.25",
        )
        tasks = plan_tasks(specs)
        assert len(tasks) == 1 and isinstance(tasks[0], tuple)
        batch = run_batch(specs)
        per_trial = [run_trial(spec) for spec in specs]
        assert {trial.kernel for trial in batch.trials} == {"vectorized"}
        for want, got in zip(per_trial, batch.trials):
            for field in COMPARED_FIELDS:
                assert getattr(got, field) == getattr(want, field)

    def test_mixed_cells_stack_distinct_schedules(self, monkeypatch):
        """The hunt's batching hint: same cell shape, different plans."""
        monkeypatch.setenv("REPRO_VEC_CRASH_MIN_STREAMS", "0")
        specs = []
        for k in range(6):
            schedule = Schedule.of(10, [CrashEvent(2 + (k % 3), k, ())])
            specs.append(
                TrialSpec(
                    algorithm="balls-into-leaves", n=10, seed=5000 + k,
                    adversary=schedule.spec(), check=False, kernel="auto",
                    capture_errors=True,
                )
            )
        assert len(plan_tasks(specs)) == 6  # six one-trial cells...
        mixed = plan_tasks(specs, mixed=True)
        assert len(mixed) == 1 and isinstance(mixed[0], tuple)  # ...one stack
        batch = run_batch(specs, mixed_cells=True)
        per_trial = [run_trial(spec) for spec in specs]
        assert {trial.kernel for trial in batch.trials} == {"vectorized"}
        for want, got in zip(per_trial, batch.trials):
            for field in COMPARED_FIELDS:
                assert getattr(got, field) == getattr(want, field)


@needs_numpy
class TestThreadInvariance:
    def test_thread_count_cannot_change_bits(self, monkeypatch):
        """REPRO_VEC_THREADS in {1, 2, 8}: byte-identical cells.

        The fanout floor is lowered so a 16-ball cell actually splits
        across workers; column partitioning is contiguous and disjoint,
        so every thread count must reproduce the serial stream bank.
        """
        import repro.core.mt19937 as mt19937

        monkeypatch.setattr(mt19937, "MIN_STREAMS_PER_THREAD", 4)
        monkeypatch.setenv("REPRO_VEC_CRASH_MIN_STREAMS", "0")
        outcomes = []
        for threads in ("1", "2", "8"):
            monkeypatch.setenv("REPRO_VEC_THREADS", threads)
            specs = _crash_specs(
                "balls-into-leaves", 16, [7 + k for k in range(5)],
                "random:rate=0.2", halt_on_name=True,
            )
            batch = run_batch(specs)
            assert {trial.kernel for trial in batch.trials} == {"vectorized"}
            outcomes.append(
                [
                    tuple(getattr(trial, field) for field in COMPARED_FIELDS)
                    for trial in batch.trials
                ]
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]


@pytest.mark.tier2
@needs_numpy
class TestDeepStackedCrashDifferential:
    """Nightly: the crash grid at n >= 512."""

    @pytest.mark.parametrize("adversary", ADVERSARIES)
    def test_deep_crash_grid_bit_identical(self, adversary):
        for n in (256, 512):
            assert_stack_matches_per_trial(
                _crash_specs(
                    "balls-into-leaves", n, [s * 7 + 1 for s in range(6)],
                    adversary, halt_on_name=True,
                )
            )
