"""The vectorized MT19937 bank against CPython's ``random.Random``.

Everything downstream (the trial-stacked kernel's differential identity)
rests on :class:`repro.core.mt19937.MTStreamBank` reproducing CPython's
generator bit for bit: seeding (``init_by_array`` over the seed's 32-bit
words), the twist, the tempering, and the two-word double assembly.
These tests pin each of those against the C implementation directly.

The whole module skips when NumPy is absent (the bank is part of the
``.[fast]`` extra); the no-NumPy CI leg instead asserts the fallback
behavior in ``test_vectorized_equivalence.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.mt19937 import HAVE_NUMPY

if not HAVE_NUMPY:
    pytest.skip("numpy not installed (the .[fast] extra)", allow_module_level=True)

import numpy as np

from repro.core.mt19937 import DOUBLES_PER_GENERATION, MTStreamBank, seed_states
from repro.core.vectorized import derive_ball_seeds
from repro.ids import sparse_ids, string_ids
from repro.sim.rng import derive_seed

#: Seed shapes with different key-word counts: tiny (1-word key, scalar
#: fallback), boundary values, typical 64-bit derive_seed outputs, and a
#: 3-word key (also the scalar fallback).
SEED_SHAPES = [
    0,
    1,
    3,
    12345,
    2**31,
    2**32 - 1,
    2**32,
    2**32 + 1,
    2**40 + 7,
    2**63 + 11,
    2**64 - 1,
    2**64,
    2**64 + 99,
    98765432101234567,
]


class TestSeedStates:
    def test_states_match_cpython_for_every_seed_shape(self):
        states = seed_states(SEED_SHAPES)
        for column, seed in enumerate(SEED_SHAPES):
            expected = random.Random(seed).getstate()[1][:-1]
            assert states[:, column].tolist() == list(expected), seed

    def test_uint64_array_input_matches_list_input(self):
        seeds = [2**32, 2**40 + 7, 7, 2**63 + 1]
        as_array = seed_states(np.array(seeds, dtype=np.uint64))
        as_list = seed_states(seeds)
        assert (as_array == as_list).all()


class TestStreamBank:
    def test_sequential_draws_match_random_random(self):
        bank = MTStreamBank(SEED_SHAPES)
        refs = [random.Random(seed) for seed in SEED_SHAPES]
        everyone = np.arange(len(SEED_SHAPES))
        for _ in range(50):
            got = bank.draws(everyone)
            for i, ref in enumerate(refs):
                assert got[i] == ref.random()

    def test_interleaved_uneven_consumption(self):
        """Streams advance independently, like per-ball walk draws."""
        seeds = SEED_SHAPES[:7]
        bank = MTStreamBank(seeds, block=3)
        refs = [random.Random(seed) for seed in seeds]
        chooser = random.Random(42)
        for _ in range(500):
            picked = sorted(chooser.sample(range(len(seeds)), chooser.randint(1, len(seeds))))
            got = bank.draws(np.array(picked))
            for value, i in zip(got, picked):
                assert value == refs[i].random()

    def test_generation_rollover_stays_identical(self):
        """> 312 doubles per stream forces full twists of the state."""
        seeds = [2**40 + 1, 5, derive_seed(9, "ball", 10097)]
        bank = MTStreamBank(seeds, block=16)
        refs = [random.Random(seed) for seed in seeds]
        everyone = np.arange(len(seeds))
        for _ in range(2 * DOUBLES_PER_GENERATION + 100):
            got = bank.draws(everyone)
            for i, ref in enumerate(refs):
                assert got[i] == ref.random()

    def test_empty_index_is_a_noop(self):
        bank = MTStreamBank([2**40 + 1])
        assert bank.draws(np.array([], dtype=np.int64)).size == 0
        assert bank.draws(np.array([0]))[0] == random.Random(2**40 + 1).random()


class TestDeriveBallSeeds:
    @pytest.mark.parametrize("labels", [sparse_ids(9), string_ids(5), [3, -1, "x"]])
    def test_matches_derive_seed_exactly(self, labels):
        labels = sorted(labels, key=repr) if any(
            isinstance(label, str) for label in labels
        ) else sorted(labels)
        trial_seeds = [0, 7, 100_003, 2**40 + 5]
        got = derive_ball_seeds(trial_seeds, labels)
        expected = [
            derive_seed(seed, "ball", label)
            for seed in trial_seeds
            for label in labels
        ]
        assert got.tolist() == expected

    def test_streams_seeded_from_derived_seeds_match_engines(self):
        """End to end: bank draws equal the per-ball derive_rng draws."""
        from repro.sim.rng import derive_rng

        labels = sparse_ids(6)
        seeds = derive_ball_seeds([11, 12], labels)
        bank = MTStreamBank(seeds)
        everyone = np.arange(len(seeds))
        refs = [
            derive_rng(trial_seed, "ball", label)
            for trial_seed in (11, 12)
            for label in labels
        ]
        for _ in range(20):
            got = bank.draws(everyone)
            for i, ref in enumerate(refs):
                assert got[i] == ref.random()
