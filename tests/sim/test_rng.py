"""Unit tests for deterministic randomness derivation."""

from __future__ import annotations

from repro.sim.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_same_scope_same_seed(self):
        assert derive_seed(7, "ball", 3) == derive_seed(7, "ball", 3)

    def test_different_scope_different_seed(self):
        assert derive_seed(7, "ball", 3) != derive_seed(7, "ball", 4)
        assert derive_seed(7, "ball", 3) != derive_seed(7, "adversary", 3)

    def test_different_run_seed_different_seed(self):
        assert derive_seed(7, "ball", 3) != derive_seed(8, "ball", 3)

    def test_string_and_int_scopes_are_distinct(self):
        assert derive_seed(7, "ball", 3) != derive_seed(7, "ball", "3")


class TestDeriveRng:
    def test_streams_are_reproducible(self):
        first = [derive_rng(1, "x").random() for _ in range(5)]
        second = [derive_rng(1, "x").random() for _ in range(5)]
        assert first == second

    def test_streams_are_independent(self):
        a = derive_rng(1, "a")
        b = derive_rng(1, "b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
