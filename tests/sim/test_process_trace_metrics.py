"""Unit tests for the process protocol, trace, and metrics helpers."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolViolation
from repro.sim.metrics import RoundMetrics, SimulationMetrics
from repro.sim.process import SyncProcess
from repro.sim.trace import Trace


class Dummy(SyncProcess):
    def compose(self, round_no):
        return ("noop",)

    def deliver(self, round_no, inbox):
        pass


class TestProcessContract:
    def test_initial_state(self):
        proc = Dummy("p")
        assert proc.pid == "p"
        assert not proc.halted
        assert not proc.decided
        assert proc.decision is None

    def test_decide_fixes_value(self):
        proc = Dummy("p")
        proc.decide(4)
        assert proc.decided
        assert proc.decision == 4

    def test_redeciding_same_value_is_fine(self):
        proc = Dummy("p")
        proc.decide(4)
        proc.decide(4)
        assert proc.decision == 4

    def test_changing_decision_raises(self):
        proc = Dummy("p")
        proc.decide(4)
        with pytest.raises(ProtocolViolation):
            proc.decide(5)

    def test_halt(self):
        proc = Dummy("p")
        proc.halt()
        assert proc.halted

    def test_repr_mentions_state(self):
        proc = Dummy("p")
        assert "running" in repr(proc)
        proc.halt()
        assert "halted" in repr(proc)


class TestTrace:
    def test_record_and_filter(self):
        trace = Trace()
        trace.record(1, "crash", pid=3)
        trace.record(2, "round", sent=5)
        trace.record(2, "crash", pid=4)
        assert len(trace) == 3
        crashes = trace.events("crash")
        assert [e.data["pid"] for e in crashes] == [3, 4]
        assert len(trace.events()) == 3

    def test_iteration_order(self):
        trace = Trace()
        for index in range(5):
            trace.record(index, "round")
        assert [e.round_no for e in trace] == list(range(5))


class TestMetrics:
    def test_totals(self):
        metrics = SimulationMetrics()
        metrics.record(RoundMetrics(1, messages_sent=4, messages_delivered=16, crashes=1))
        metrics.record(RoundMetrics(2, messages_sent=3, messages_delivered=9, crashes=0))
        assert metrics.total_rounds == 2
        assert metrics.total_messages_sent == 7
        assert metrics.total_messages_delivered == 25
        assert metrics.total_crashes == 1

    def test_empty(self):
        metrics = SimulationMetrics()
        assert metrics.total_rounds == 0
        assert metrics.total_messages_sent == 0
