"""Unit tests for the renaming specification checker."""

from __future__ import annotations

import pytest

from repro.errors import SpecViolation
from repro.sim.checker import RenamingSpec, check_renaming
from repro.sim.metrics import SimulationMetrics
from repro.sim.simulator import SimulationResult


def make_result(decisions, crashed=(), halted=None):
    halted = set(decisions) - set(crashed) if halted is None else halted
    return SimulationResult(
        rounds=5,
        decisions=dict(decisions),
        crashed=frozenset(crashed),
        halted=frozenset(halted),
        metrics=SimulationMetrics(),
    )


class TestSpec:
    def test_m_defaults_to_n(self):
        spec = RenamingSpec(n=8)
        assert spec.m == 8
        assert spec.tight

    def test_loose_namespace(self):
        spec = RenamingSpec(n=8, namespace_size=15)
        assert spec.m == 15
        assert not spec.tight


class TestChecks:
    def test_accepts_valid_tight_renaming(self):
        result = make_result({"a": 0, "b": 1, "c": 2})
        decided = check_renaming(result, RenamingSpec(n=3))
        assert decided == {"a": 0, "b": 1, "c": 2}

    def test_crashed_processes_are_exempt(self):
        result = make_result({"a": 0, "b": None, "c": 0}, crashed={"b", "c"})
        decided = check_renaming(result, RenamingSpec(n=3))
        assert decided == {"a": 0}

    def test_termination_violation(self):
        result = make_result({"a": 0, "b": None})
        with pytest.raises(SpecViolation, match="termination"):
            check_renaming(result, RenamingSpec(n=2))

    def test_validity_violation_above_range(self):
        result = make_result({"a": 0, "b": 2})
        with pytest.raises(SpecViolation, match="validity"):
            check_renaming(result, RenamingSpec(n=2))

    def test_validity_violation_negative(self):
        result = make_result({"a": -1, "b": 0})
        with pytest.raises(SpecViolation, match="validity"):
            check_renaming(result, RenamingSpec(n=2))

    def test_validity_violation_non_integer(self):
        result = make_result({"a": "zero", "b": 0})
        with pytest.raises(SpecViolation, match="validity"):
            check_renaming(result, RenamingSpec(n=2))

    def test_uniqueness_violation(self):
        result = make_result({"a": 1, "b": 1})
        with pytest.raises(SpecViolation, match="uniqueness"):
            check_renaming(result, RenamingSpec(n=2))

    def test_decided_but_not_halted_is_flagged(self):
        result = make_result({"a": 0, "b": 1}, halted={"a"})
        with pytest.raises(SpecViolation, match="never halted"):
            check_renaming(result, RenamingSpec(n=2))

    def test_loose_namespace_allows_larger_names(self):
        result = make_result({"a": 9, "b": 1})
        decided = check_renaming(result, RenamingSpec(n=2, namespace_size=10))
        assert decided["a"] == 9

    def test_multiple_problems_reported_together(self):
        result = make_result({"a": 5, "b": 5, "c": None})
        with pytest.raises(SpecViolation) as exc:
            check_renaming(result, RenamingSpec(n=3))
        message = str(exc.value)
        assert "validity" in message
        assert "uniqueness" in message
        assert "termination" in message
