"""Differential suite for the FaultPlan generalization.

Three contracts, one file:

* certified **omission** adversaries are bit-identical between the
  reference engine and the columnar fast path across the
  algorithm x n x seed grid — same rounds, names, crash sets, and
  per-run omission counts;
* **delay** and **corruption** adversaries are rejected *by family
  name* when the fast path is pinned, and behave correctly on the
  reference engine (messages actually deferred / payloads actually
  rewritten);
* :func:`~repro.adversary.base.clamp_fault_plan` — the shared rulebook
  both engines apply — can never exceed a per-family budget, resurrect
  a crashed sender, mask a self-link, or emit a delay outside
  ``1..delay_bound``, no matter what plan an adversary returns
  (seeded-random property sweep).
"""

from __future__ import annotations

import random

import pytest

from repro.adversary.base import (
    FaultBudget,
    FaultPlan,
    clamp_fault_plan,
)
from repro.adversary.corruption import CorruptingAdversary
from repro.adversary.delay import BoundedDelayAdversary
from repro.adversary.omission import (
    IIDOmissionAdversary,
    ScheduledFaultAdversary,
    ScheduledOmission,
    TargetedOmissionAdversary,
)
from repro.adversary.scheduled import ScheduledCrash
from repro.errors import KernelUnsupported
from repro.ids import sparse_ids
from repro.sim.runner import ALGORITHMS, run_renaming

BIL_ALGORITHMS = sorted(name for name, policy in ALGORITHMS.items() if policy)

#: Survivable omission strategies: windows starting after the hello
#: round keep the loss pattern from wedging (a round-1 drop leaves the
#: sender permanently unknown to the masked receivers).
OMISSION_FACTORIES = {
    "iid": lambda seed: IIDOmissionAdversary(0.1, rounds=(2, 6), seed=seed),
    "iid-capped": lambda seed: IIDOmissionAdversary(
        0.2, max_omissions=6, rounds=(3, 5), seed=seed
    ),
    "targeted": lambda seed: TargetedOmissionAdversary(
        count=1, rounds=(2, 5)
    ),
    # sparse_ids(16) pids: 10000, 10097, 10194, ...
    "scheduled": lambda seed: ScheduledFaultAdversary(
        crashes=[ScheduledCrash(3, 10485, "none")],
        omissions=[
            ScheduledOmission(2, 10000, "all"),
            ScheduledOmission(4, 10679, (10097, 10291)),
        ],
    ),
}


def _pair(algorithm, n, seed, factory, **kwargs):
    """One spec on both engines (fresh adversary each, they are stateful)."""
    runs = []
    for kernel in ("reference", "columnar"):
        runs.append(
            run_renaming(
                algorithm,
                sparse_ids(n),
                seed=seed,
                adversary=factory(seed),
                kernel=kernel,
                check=False,
                **kwargs,
            )
        )
    return runs


def assert_fault_identical(reference, columnar):
    assert reference.kernel == "reference"
    assert columnar.kernel == "columnar"
    assert columnar.rounds == reference.rounds
    assert columnar.names == reference.names
    assert columnar.crashed == reference.crashed
    assert columnar.failures == reference.failures
    assert columnar.last_round_named == reference.last_round_named
    assert (
        columnar.metrics.total_omissions == reference.metrics.total_omissions
    )
    assert columnar.metrics.total_crashes == reference.metrics.total_crashes


class TestOmissionBitIdentical:
    @pytest.mark.parametrize("algorithm", BIL_ALGORITHMS)
    @pytest.mark.parametrize("adversary_key", sorted(OMISSION_FACTORIES))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_grid(self, algorithm, adversary_key, seed):
        reference, columnar = _pair(
            algorithm, 16, seed, OMISSION_FACTORIES[adversary_key]
        )
        assert_fault_identical(reference, columnar)
        if adversary_key != "scheduled":
            assert reference.metrics.total_omissions > 0

    @pytest.mark.parametrize("n", (5, 8, 23))
    def test_non_power_of_two_sizes(self, n):
        reference, columnar = _pair(
            "balls-into-leaves", n, 3, OMISSION_FACTORIES["iid"]
        )
        assert_fault_identical(reference, columnar)

    def test_halt_on_name_composes_with_omission(self):
        reference, columnar = _pair(
            "balls-into-leaves",
            16,
            2,
            OMISSION_FACTORIES["iid"],
            halt_on_name=True,
        )
        assert_fault_identical(reference, columnar)

    def test_auto_keeps_omission_on_the_fast_path(self):
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(16),
            seed=0,
            adversary=IIDOmissionAdversary(0.1, rounds=(2, 6), seed=0),
            kernel="auto",
            check=False,
        )
        assert run.kernel == "columnar"


class TestUnsupportedFamiliesRejectByName:
    def test_delay_rejected_on_columnar(self):
        with pytest.raises(KernelUnsupported, match="'delay'"):
            run_renaming(
                "balls-into-leaves",
                sparse_ids(8),
                seed=0,
                adversary=BoundedDelayAdversary(2, seed=0),
                kernel="columnar",
            )

    def test_corruption_rejected_on_columnar(self):
        with pytest.raises(KernelUnsupported, match="'corruption'"):
            run_renaming(
                "balls-into-leaves",
                sparse_ids(8),
                seed=0,
                adversary=CorruptingAdversary(b=1, seed=0),
                kernel="columnar",
            )

    def test_omission_rejected_on_vectorized_by_name(self):
        # The vectorized batch kernel supports the crash family only.
        with pytest.raises(KernelUnsupported, match="'omission'"):
            run_renaming(
                "balls-into-leaves",
                sparse_ids(8),
                seed=0,
                adversary=IIDOmissionAdversary(0.1, seed=0),
                kernel="vectorized",
            )

    def test_auto_falls_back_to_reference_for_delay(self):
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(8),
            seed=0,
            adversary=BoundedDelayAdversary(2, rate=0.2, seed=0),
            kernel="auto",
            check=False,
        )
        assert run.kernel == "reference"
        assert run.metrics.total_delayed > 0

    def test_corruption_applies_on_the_reference_engine(self):
        run = run_renaming(
            "balls-into-leaves",
            sparse_ids(8),
            seed=1,
            adversary=CorruptingAdversary(b=1, seed=1),
            kernel="reference",
            check=False,
        )
        assert run.metrics.total_corruptions == 1


def _random_fault_plan(rng, pids):
    crashes = {
        pid: frozenset(rng.sample(pids, rng.randrange(len(pids))))
        for pid in rng.sample(pids, rng.randrange(len(pids) // 2 + 1))
    }
    omissions = {
        pid: frozenset(rng.sample(pids, rng.randrange(1, len(pids))))
        for pid in rng.sample(pids, rng.randrange(len(pids) // 2 + 1))
    }
    delays = {
        (rng.choice(pids), rng.choice(pids)): rng.randrange(-1, 9)
        for _ in range(rng.randrange(8))
    }
    corruptions = {
        pid: {"forged": True}
        for pid in rng.sample(pids, rng.randrange(len(pids) // 2 + 1))
    }
    return FaultPlan(
        crashes=crashes,
        omissions=omissions,
        delays=delays,
        corruptions=corruptions,
    )


class TestClampFaultPlanProperties:
    """Seeded-random property sweep over the shared clamp rulebook."""

    PIDS = list(range(10))

    def _clamped(self, seed):
        rng = random.Random(seed)
        alive = sorted(rng.sample(self.PIDS, rng.randrange(2, len(self.PIDS))))
        budget = FaultBudget(
            omissions=rng.choice([None, 0, 1, 3, 5]),
            delay_bound=rng.choice([0, 1, 2, 4]),
            corruptions=rng.choice([0, 1, 2]),
        )
        omissions_used = rng.randrange(3)
        plan = _random_fault_plan(rng, self.PIDS)
        clamped = clamp_fault_plan(
            plan,
            alive=alive,
            budget_remaining=rng.randrange(4),
            budget=budget,
            omissions_used=omissions_used,
            corrupted_so_far=frozenset(rng.sample(self.PIDS, rng.randrange(3))),
        )
        return plan, clamped, alive, budget, omissions_used

    @pytest.mark.parametrize("seed", range(60))
    def test_budgets_and_liveness_hold(self, seed):
        plan, clamped, alive, budget, used = self._clamped(seed)
        alive_set = set(alive)

        # Crash clamp: victims alive, budget respected.
        assert set(clamped.crashes) <= alive_set

        # A crashed sender is dead for every other family (no
        # resurrection: crash wins for the same sender).
        for sender in clamped.omissions:
            assert sender not in clamped.crashes
            assert sender in alive_set
        for sender, _receiver in clamped.delays:
            assert sender not in clamped.crashes
        for sender in clamped.corruptions:
            assert sender not in clamped.crashes
            assert sender in alive_set

        # No self-links; receivers must be alive.
        for sender, dropped in clamped.omissions.items():
            assert sender not in dropped
            assert dropped <= alive_set
        for sender, receiver in clamped.delays:
            assert sender != receiver
            assert {sender, receiver} <= alive_set

        # Omission budget: dropped links never exceed what remains.
        if budget.omissions is not None:
            total = sum(len(d) for d in clamped.omissions.values())
            assert total <= max(0, budget.omissions - used)

        # Delay bound: clamped into 1..Δ, family disabled at Δ=0.
        if budget.delay_bound == 0:
            assert not clamped.delays
        for deferral in clamped.delays.values():
            assert 1 <= deferral <= budget.delay_bound

        # Omission wins over delay for the same link.
        for sender, receiver in clamped.delays:
            assert receiver not in clamped.omissions.get(sender, ())


    @pytest.mark.parametrize("seed", range(20))
    def test_corruption_counts_distinct_senders(self, seed):
        rng = random.Random(seed)
        already = frozenset(rng.sample(self.PIDS, rng.randrange(3)))
        budget = FaultBudget(corruptions=rng.choice([0, 1, 2]))
        plan = _random_fault_plan(rng, self.PIDS)
        clamped = clamp_fault_plan(
            FaultPlan(corruptions=plan.corruptions),
            alive=self.PIDS,
            budget_remaining=0,
            budget=budget,
            corrupted_so_far=already,
        )
        fresh = set(clamped.corruptions) - already
        assert len(already | fresh) <= max(len(already), budget.corruptions)

    @pytest.mark.parametrize("seed", range(10))
    def test_clamp_is_deterministic(self, seed):
        _, first, *_ = self._clamped(seed)
        _, second, *_ = self._clamped(seed)
        assert first == second
