"""Differential suite: the trial-stacked vectorized kernel.

The contract is the same one the columnar kernel lives under, one level
up: a stacked cell must be **bit-for-bit identical** to running its
trials one by one on the columnar (and hence reference) kernel — same
:class:`~repro.sim.simulator.SimulationResult` per trial, same metrics
rows, same batch tables.  Cells the stacked layout cannot model must be
rejected explicitly (``KernelUnsupported`` when pinned, per-trial
fallback under ``auto``), never silently mis-simulated.

With NumPy absent the equivalence grid skips and the rejection tests
assert the degraded behavior: imports stay clean, ``auto`` falls back to
the columnar engine, and pinning ``kernel="vectorized"`` raises with an
install hint.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary.random_crash import RandomCrashAdversary
from repro.errors import KernelUnsupported
from repro.ids import sparse_ids, string_ids
from repro.sim.batch import (
    ScenarioMatrix,
    TrialSpec,
    plan_tasks,
    run_batch,
    run_cell,
    run_trial,
)
from repro.sim.runner import ALGORITHMS, run_renaming
from repro.sim.trace import Trace
from repro.sim.vectorized import vectorized_available

BIL_ALGORITHMS = sorted(name for name, policy in ALGORITHMS.items() if policy)

needs_numpy = pytest.mark.skipif(
    not vectorized_available(), reason="numpy not installed (the .[fast] extra)"
)


def _strip_kernel(result):
    """A TrialResult's identity minus the engine label."""
    return (
        result.spec,
        result.rounds,
        result.failures,
        result.messages_sent,
        result.messages_delivered,
        result.last_round_named,
        result.names,
    )


def _cell_specs(algorithm, n, seeds, *, halt_on_name=False, kernel="vectorized"):
    return [
        TrialSpec(
            algorithm=algorithm,
            n=n,
            seed=seed,
            halt_on_name=halt_on_name,
            kernel=kernel,
        )
        for seed in seeds
    ]


def assert_single_run_bit_identical(columnar, vectorized):
    assert vectorized.kernel == "vectorized"
    assert columnar.kernel == "columnar"
    assert vectorized.rounds == columnar.rounds
    assert vectorized.names == columnar.names
    assert vectorized.crashed == columnar.crashed
    assert vectorized.last_round_named == columnar.last_round_named
    # SimulationResult dataclass equality covers decisions, halted,
    # participants, and every per-round metrics row.
    assert vectorized.result == columnar.result


@needs_numpy
class TestSingleRunEquivalence:
    """kernel="vectorized" as a per-run engine (a one-trial stack)."""

    @pytest.mark.parametrize("algorithm", BIL_ALGORITHMS)
    @pytest.mark.parametrize("halt", [False, True])
    def test_grid_bit_identical(self, algorithm, halt):
        for n in (1, 2, 3, 8, 13, 64, 129):
            for seed in (0, 1):
                columnar = run_renaming(
                    algorithm, sparse_ids(n), seed=seed,
                    halt_on_name=halt, kernel="columnar",
                )
                vectorized = run_renaming(
                    algorithm, sparse_ids(n), seed=seed,
                    halt_on_name=halt, kernel="vectorized",
                )
                assert_single_run_bit_identical(columnar, vectorized)

    def test_string_ids_bit_identical(self):
        columnar = run_renaming(
            "balls-into-leaves", string_ids(13), seed=2, kernel="columnar"
        )
        vectorized = run_renaming(
            "balls-into-leaves", string_ids(13), seed=2, kernel="vectorized"
        )
        assert_single_run_bit_identical(columnar, vectorized)


@needs_numpy
class TestStackedCellEquivalence:
    """Whole cells vs. per-trial columnar execution."""

    @pytest.mark.parametrize("algorithm", BIL_ALGORITHMS)
    @pytest.mark.parametrize("halt", [False, True])
    def test_cell_grid_bit_identical(self, algorithm, halt):
        for n in (3, 8, 64, 129, 256):
            seeds = [trial * 100_003 for trial in range(6)]
            specs = _cell_specs(algorithm, n, seeds, halt_on_name=halt)
            stacked = run_cell(specs)
            for spec, result in zip(specs, stacked):
                assert result.kernel == "vectorized"
                reference = run_trial(
                    TrialSpec(
                        algorithm=spec.algorithm, n=spec.n, seed=spec.seed,
                        halt_on_name=spec.halt_on_name, kernel="columnar",
                    )
                )
                assert _strip_kernel(result)[1:] == _strip_kernel(reference)[1:]

    def test_trial_order_inside_a_stack_is_irrelevant(self):
        """Shuffling a stacked cell's trials changes no per-trial result."""
        seeds = list(range(30))
        specs = _cell_specs("balls-into-leaves", 32, seeds)
        straight = {r.spec.seed: _strip_kernel(r) for r in run_cell(specs)}
        shuffled_seeds = seeds[:]
        random.Random(7).shuffle(shuffled_seeds)
        shuffled = run_cell(_cell_specs("balls-into-leaves", 32, shuffled_seeds))
        for result in shuffled:
            assert _strip_kernel(result) == straight[result.spec.seed]

    def test_stream_budget_chunking_is_invisible(self, monkeypatch):
        """Tiny REPRO_VEC_MAX_STREAMS splits stacks without changing bits."""
        specs = _cell_specs("balls-into-leaves", 16, range(10), kernel="auto")
        whole = run_batch(specs).trials
        monkeypatch.setenv("REPRO_VEC_MAX_STREAMS", "48")  # 3 trials per stack
        tasks = plan_tasks(specs)
        assert len(tasks) == 4 and all(isinstance(t, tuple) for t in tasks[:3])
        chunked = run_batch(specs).trials
        assert chunked == whole

    def test_batch_auto_upgrade_matches_pinned_columnar_batch(self):
        matrix = ScenarioMatrix.build(
            ["balls-into-leaves", "early-terminating"], [8, 33],
            trials=5, base_seed=3,
        )
        auto = run_batch(matrix)
        columnar = run_batch(
            ScenarioMatrix.build(
                ["balls-into-leaves", "early-terminating"], [8, 33],
                trials=5, base_seed=3, kernel="columnar",
            )
        )
        assert len(auto) == len(columnar) == 20
        for upgraded, pinned in zip(auto.trials, columnar.trials):
            assert upgraded.kernel == "vectorized"
            assert pinned.kernel == "columnar"
            assert _strip_kernel(upgraded)[1:] == _strip_kernel(pinned)[1:]
        # Cell statistics — what the experiment tables consume — agree
        # exactly, so the upgrade cannot move a published number.
        assert auto.cell_stats() == columnar.cell_stats()

    def test_mixed_matrix_stacks_only_eligible_cells(self):
        matrix = ScenarioMatrix.build(
            ["balls-into-leaves", "flood"], [8],
            ["none", "random:rate=0.2"], trials=3, base_seed=0,
        )
        batch = run_batch(matrix)
        kernels = {
            (trial.spec.algorithm, trial.spec.adversary.key): trial.kernel
            for trial in batch.trials
        }
        # Certified crash cells can stack too (the crash engine), but a
        # 3-trial n=8 cell sits far below the crash stream floor, so it
        # keeps the per-trial columnar path; non-BiL algorithms keep the
        # scalar path outright.
        assert kernels == {
            ("balls-into-leaves", "none"): "vectorized",
            ("balls-into-leaves", "random:rate=0.2"): "columnar",
            ("flood", "none"): "reference",
            ("flood", "random:rate=0.2"): "reference",
        }

    def test_serial_and_process_backends_agree_on_stacked_cells(self):
        matrix = ScenarioMatrix.build(
            ["balls-into-leaves"], [16], trials=8, base_seed=1
        )
        serial = run_batch(matrix, executor="serial")
        process = run_batch(matrix, executor="process", workers=2)
        assert serial.trials == process.trials
        assert {t.kernel for t in serial.trials} == {"vectorized"}


class TestTaskPlanning:
    """plan_tasks grouping rules (NumPy-independent where possible)."""

    def test_single_trial_cells_stay_individual(self):
        specs = _cell_specs("balls-into-leaves", 8, [0], kernel="auto")
        assert plan_tasks(specs) == specs

    def test_pinned_scalar_kernels_never_stack(self):
        for kernel in ("reference", "columnar"):
            specs = _cell_specs("balls-into-leaves", 8, range(4), kernel=kernel)
            assert plan_tasks(specs) == specs

    def test_parts_split_large_stacks_for_worker_spread(self):
        if not vectorized_available():
            pytest.skip("grouping requires the vectorized engine")
        specs = _cell_specs("balls-into-leaves", 8, range(12), kernel="auto")
        tasks = plan_tasks(specs, parts=3)
        assert [len(task) for task in tasks] == [4, 4, 4]
        assert [spec.seed for task in tasks for spec in task] == list(range(12))


class TestRejections:
    def test_run_cell_rejects_mixed_cell_configs(self):
        """Direct callers cannot silently run seeds under the wrong cell."""
        from repro.errors import ConfigurationError

        mixed = [
            TrialSpec(algorithm="balls-into-leaves", n=8, seed=0),
            TrialSpec(algorithm="balls-into-leaves", n=16, seed=1),
        ]
        with pytest.raises(ConfigurationError) as caught:
            run_cell(mixed)
        assert "same-cell" in str(caught.value)

    def test_pinned_vectorized_rejects_uncertified_adversaries(self):
        class Rogue:
            name = "rogue"

            def plan_crashes(self, ctx):  # pragma: no cover - never runs
                return ()

        with pytest.raises(KernelUnsupported) as caught:
            run_renaming(
                "balls-into-leaves", sparse_ids(8), seed=0,
                adversary=Rogue(),
                kernel="vectorized",
            )
        assert "not columnar-certified" in str(caught.value)

    def test_pinned_vectorized_accepts_certified_crash_adversaries(self):
        if not vectorized_available():
            pytest.skip("requires numpy")
        vectorized = run_renaming(
            "balls-into-leaves", sparse_ids(8), seed=0,
            adversary=RandomCrashAdversary(0.2, seed=0),
            kernel="vectorized",
        )
        columnar = run_renaming(
            "balls-into-leaves", sparse_ids(8), seed=0,
            adversary=RandomCrashAdversary(0.2, seed=0),
            kernel="columnar",
        )
        assert_single_run_bit_identical(columnar, vectorized)

    def test_pinned_vectorized_rejects_non_bil_algorithms(self):
        with pytest.raises(KernelUnsupported):
            run_renaming("flood", sparse_ids(8), seed=0, kernel="vectorized")

    def test_pinned_vectorized_rejects_faithful_view_and_traces(self):
        with pytest.raises(KernelUnsupported) as caught:
            run_renaming(
                "balls-into-leaves", sparse_ids(8), seed=0,
                view_mode="faithful", kernel="vectorized",
            )
        assert "faithful" in str(caught.value)
        with pytest.raises(KernelUnsupported):
            run_renaming(
                "balls-into-leaves", sparse_ids(8), seed=0,
                trace=Trace(), kernel="vectorized",
            )

    def test_auto_never_selects_vectorized_for_single_runs(self):
        run = run_renaming("balls-into-leaves", sparse_ids(8), seed=0, kernel="auto")
        assert run.kernel == "columnar"


class TestNumpyFallback:
    """The degraded grid when the .[fast] extra is missing."""

    def _force_unavailable(self, monkeypatch):
        import repro.core.mt19937 as mt19937
        import repro.core.vectorized as core_vec

        monkeypatch.setattr(mt19937, "HAVE_NUMPY", False)
        monkeypatch.setattr(core_vec, "HAVE_NUMPY", False)

    def test_pinned_vectorized_raises_with_install_hint(self, monkeypatch):
        self._force_unavailable(monkeypatch)
        with pytest.raises(KernelUnsupported) as caught:
            run_renaming(
                "balls-into-leaves", sparse_ids(8), seed=0, kernel="vectorized"
            )
        assert "numpy" in str(caught.value)
        assert "[fast]" in str(caught.value)

    def test_auto_batches_fall_back_to_columnar_per_trial(self, monkeypatch):
        self._force_unavailable(monkeypatch)
        specs = _cell_specs("balls-into-leaves", 8, range(3), kernel="auto")
        assert plan_tasks(specs) == specs  # nothing stacks
        batch = run_batch(specs)
        assert {trial.kernel for trial in batch.trials} == {"columnar"}


@pytest.mark.tier2
@needs_numpy
class TestDeepStackedDifferential:
    """Nightly: a 1000-trial cell and a deeper grid."""

    def test_thousand_trial_cell_identity(self):
        seeds = [trial * 100_003 for trial in range(1000)]
        specs = _cell_specs("balls-into-leaves", 64, seeds)
        stacked = run_cell(specs)
        assert len(stacked) == 1000
        for spec, result in zip(specs[::97], stacked[::97]):
            reference = run_trial(
                TrialSpec(algorithm="balls-into-leaves", n=64, seed=spec.seed,
                          kernel="columnar")
            )
            assert _strip_kernel(result)[1:] == _strip_kernel(reference)[1:]

    @pytest.mark.parametrize("algorithm", BIL_ALGORITHMS)
    def test_deep_grid_bit_identical(self, algorithm):
        for n in (256, 512):
            for halt in (False, True):
                specs = _cell_specs(
                    algorithm, n, [s * 7 + 1 for s in range(20)], halt_on_name=halt
                )
                stacked = run_cell(specs)
                for spec, result in zip(specs, stacked):
                    reference = run_trial(
                        TrialSpec(
                            algorithm=algorithm, n=n, seed=spec.seed,
                            halt_on_name=halt, kernel="columnar",
                        )
                    )
                    assert _strip_kernel(result)[1:] == _strip_kernel(reference)[1:]
