"""Integration tests for the high-level runner API."""

from __future__ import annotations

import pytest

from repro.adversary.random_crash import RandomCrashAdversary
from repro.errors import ConfigurationError
from repro.ids import sparse_ids, string_ids
from repro.sim.runner import ALGORITHMS, WORKLOADS, run_renaming


class TestRunRenaming:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_every_algorithm_renames_small_instance(self, algorithm):
        run = run_renaming(algorithm, sparse_ids(8), seed=1)
        if WORKLOADS[algorithm].renaming:
            assert sorted(run.names.values()) == list(range(8))
        else:
            # approx-agreement decides reals within epsilon, not names.
            values = list(run.names.values())
            assert len(values) == 8
            assert max(values) - min(values) <= 1.0

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            run_renaming("quantum", sparse_ids(4))

    def test_empty_ids(self):
        with pytest.raises(ConfigurationError):
            run_renaming("balls-into-leaves", [])

    def test_single_process(self):
        run = run_renaming("balls-into-leaves", [99], seed=0)
        assert run.names == {99: 0}
        assert run.rounds >= 1

    def test_string_ids_work(self):
        run = run_renaming("balls-into-leaves", string_ids(9), seed=2)
        assert sorted(run.names.values()) == list(range(9))

    def test_non_power_of_two(self):
        for n in (3, 5, 11, 23):
            run = run_renaming("balls-into-leaves", sparse_ids(n), seed=3)
            assert sorted(run.names.values()) == list(range(n))

    def test_deterministic_given_seed(self):
        first = run_renaming("balls-into-leaves", sparse_ids(32), seed=5)
        second = run_renaming("balls-into-leaves", sparse_ids(32), seed=5)
        assert first.names == second.names
        assert first.rounds == second.rounds

    def test_different_seed_changes_names(self):
        first = run_renaming("balls-into-leaves", sparse_ids(64), seed=1)
        second = run_renaming("balls-into-leaves", sparse_ids(64), seed=2)
        assert first.names != second.names

    def test_crashes_reported(self):
        adversary = RandomCrashAdversary(0.2, seed=9)
        run = run_renaming("balls-into-leaves", sparse_ids(32), seed=9, adversary=adversary)
        assert run.failures == len(run.crashed) > 0
        # Correct survivors still hold distinct names.
        names = list(run.names.values())
        assert len(names) == len(set(names))

    def test_phase_stats_collection(self):
        run = run_renaming(
            "balls-into-leaves", sparse_ids(16), seed=4, collect_phase_stats=True
        )
        assert run.phase_stats
        assert run.phase_stats[0].balls == 16
        assert run.phase_stats[-1].balls_at_leaves == 16

    def test_phases_property(self):
        run = run_renaming("early-terminating", sparse_ids(16), seed=4)
        assert run.rounds == 3
        assert run.phases == 1

    def test_last_round_named_at_most_total(self):
        run = run_renaming("balls-into-leaves", sparse_ids(32), seed=6)
        assert run.last_round_named is not None
        assert run.last_round_named <= run.rounds

    def test_crash_budget_respected(self):
        adversary = RandomCrashAdversary(1.0, seed=1)
        run = run_renaming(
            "balls-into-leaves", sparse_ids(16), seed=1, adversary=adversary, crash_budget=3
        )
        assert run.failures <= 3

    def test_flood_rounds_equal_budget_plus_one(self):
        run = run_renaming("flood", sparse_ids(6), seed=0, crash_budget=4)
        assert run.rounds == 5
