"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T2" in out
        assert "EXP-DET" in out

    def test_demo(self, capsys):
        assert main(["demo", "--n", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "renamed n=8" in out
        assert "-> name" in out

    def test_demo_other_algorithm(self, capsys):
        assert main(["demo", "--n", "6", "--algorithm", "early-terminating"]) == 0
        assert "early-terminating" in capsys.readouterr().out

    def test_run_smoke(self, capsys):
        assert main(["run", "EXP-F4", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "EXP-F4" in out
        assert "gateway" in out

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "EXP-NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_writes_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["run", "EXP-F4", "--scale", "smoke", "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert "EXP-F4" in out_file.read_text()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
