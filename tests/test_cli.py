"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T2" in out
        assert "EXP-DET" in out

    def test_demo(self, capsys):
        assert main(["demo", "--n", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "renamed n=8" in out
        assert "-> name" in out

    def test_demo_other_algorithm(self, capsys):
        assert main(["demo", "--n", "6", "--algorithm", "early-terminating"]) == 0
        assert "early-terminating" in capsys.readouterr().out

    def test_run_smoke(self, capsys):
        assert main(["run", "EXP-F4", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "EXP-F4" in out
        assert "gateway" in out

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "EXP-NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_writes_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["run", "EXP-F4", "--scale", "smoke", "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert "EXP-F4" in out_file.read_text()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestBatchCli:
    def test_batch_renders_one_row_per_cell(self, capsys):
        assert (
            main(
                [
                    "batch",
                    "--algorithms", "balls-into-leaves,flood",
                    "--sizes", "8,16",
                    "--adversary", "none",
                    "--adversary", "random:rate=0.2",
                    "--trials", "2",
                    "--seed", "1",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "scenario matrix: 16 trials" in captured.out
        assert "random:rate=0.2" in captured.out
        assert captured.out.count("flood") == 4  # one row per (n, adversary) cell
        assert "ran 16 trials via the serial executor" in captured.err

    def test_batch_process_executor_prints_identical_table(self, capsys):
        argv = ["batch", "--algorithms", "flood", "--sizes", "8", "--trials", "3"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--executor", "process", "--workers", "2"]) == 0
        process_out = capsys.readouterr().out
        # Identical cells; only the executor named in the note differs.
        assert process_out.replace("executor=process", "executor=serial") == serial_out

    def test_batch_writes_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "cells.csv"
        assert (
            main(["batch", "--algorithms", "flood", "--sizes", "8", "--trials", "2",
                  "--csv", str(csv_path)])
            == 0
        )
        capsys.readouterr()
        content = csv_path.read_text()
        assert content.splitlines()[0].startswith("algorithm,n,adversary,trials")
        assert "flood,8,none,2" in content

    def test_batch_derived_seed_mode(self, capsys):
        assert (
            main(["batch", "--algorithms", "flood", "--sizes", "8", "--trials", "2",
                  "--seed-mode", "derived"])
            == 0
        )
        assert "scenario matrix: 2 trials" in capsys.readouterr().out

    def test_batch_unknown_algorithm_fails_cleanly(self, capsys):
        assert main(["batch", "--algorithms", "quantum", "--sizes", "8"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_batch_unknown_adversary_fails_cleanly(self, capsys):
        assert (
            main(["batch", "--algorithms", "flood", "--sizes", "8",
                  "--adversary", "byzantine"])
            == 2
        )
        assert "unknown adversary" in capsys.readouterr().err

    def test_run_threads_workers_through_batched_experiments(self, capsys):
        assert main(["run", "EXP-T3", "--scale", "smoke", "--workers", "2"]) == 0
        assert "EXP-T3" in capsys.readouterr().out


class TestKernelCli:
    def test_demo_reports_columnar_kernel(self, capsys):
        assert main(["demo", "--n", "8", "--kernel", "columnar"]) == 0
        assert "(columnar kernel)" in capsys.readouterr().out

    def test_demo_reference_kernel(self, capsys):
        assert main(["demo", "--n", "8", "--kernel", "reference"]) == 0
        assert "(reference kernel)" in capsys.readouterr().out

    def test_demo_pinned_columnar_rejects_flood_cleanly(self, capsys):
        assert main(["demo", "--n", "8", "--algorithm", "flood",
                     "--kernel", "columnar"]) == 2
        assert "cannot run this simulation" in capsys.readouterr().err

    def test_batch_kernel_pinning_matches_auto_output(self, capsys):
        argv = ["batch", "--algorithms", "balls-into-leaves", "--sizes", "16",
                "--trials", "3"]
        assert main(argv + ["--kernel", "reference"]) == 0
        reference_out = capsys.readouterr().out
        assert main(argv + ["--kernel", "columnar"]) == 0
        columnar_out = capsys.readouterr().out
        assert columnar_out == reference_out

    def test_batch_vectorized_kernel_matches_reference_output(self, capsys):
        from repro.sim.vectorized import vectorized_available

        if not vectorized_available():
            pytest.skip("numpy not installed (the .[fast] extra)")
        argv = ["batch", "--algorithms", "balls-into-leaves", "--sizes", "16",
                "--trials", "3"]
        assert main(argv + ["--kernel", "reference"]) == 0
        reference_out = capsys.readouterr().out
        assert main(argv + ["--kernel", "vectorized"]) == 0
        vectorized_out = capsys.readouterr().out
        assert vectorized_out == reference_out

    def test_demo_vectorized_kernel_or_clean_install_hint(self, capsys):
        from repro.sim.vectorized import vectorized_available

        code = main(["demo", "--n", "8", "--kernel", "vectorized"])
        captured = capsys.readouterr()
        if vectorized_available():
            assert code == 0
            assert "(vectorized kernel)" in captured.out
        else:
            assert code == 2
            assert "numpy" in captured.err

    def test_batch_chunksize_flag_changes_nothing_but_wallclock(self, capsys):
        argv = ["batch", "--algorithms", "balls-into-leaves", "--sizes", "8",
                "--trials", "4", "--executor", "process", "--workers", "2"]
        assert main(argv) == 0
        default_out = capsys.readouterr().out
        assert main(argv + ["--chunksize", "1"]) == 0
        chunked_out = capsys.readouterr().out
        assert chunked_out == default_out

    def test_run_threads_kernel_through_experiments(self, capsys):
        assert main(["run", "EXP-T2", "--scale", "smoke",
                     "--kernel", "reference"]) == 0
        assert "EXP-T2" in capsys.readouterr().out


class TestJsonlOut:
    def test_batch_out_jsonl_writes_per_trial_rows(self, tmp_path, capsys):
        out = tmp_path / "trials.jsonl"
        assert main(["batch", "--algorithms", "balls-into-leaves", "--sizes", "8",
                     "--trials", "3", "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "3 JSONL rows written" in captured.err
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 3
        assert rows[0]["algorithm"] == "balls-into-leaves"
        assert rows[0]["n"] == 8
        assert rows[0]["adversary"] == "none"
        from repro.sim.vectorized import vectorized_available

        expected_kernel = "vectorized" if vectorized_available() else "columnar"
        assert rows[0]["kernel"] == expected_kernel
        assert {row["seed"] for row in rows} == {0, 1, 2}
        assert all(row["rounds"] >= 3 for row in rows)

    def test_run_out_jsonl_writes_per_cell_rows(self, tmp_path, capsys):
        out = tmp_path / "cells.jsonl"
        assert main(["run", "EXP-T2", "--scale", "smoke", "--out", str(out)]) == 0
        capsys.readouterr()
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows
        assert all(row["experiment"] == "EXP-T2" for row in rows)
        # Every run/all row records the kernel-selection mode it ran under.
        assert all(row["kernel"] == "auto" for row in rows)
        tables = {row["table"] for row in rows}
        assert any("Rounds to rename" in title for title in tables)
        first = rows[0]
        assert first["n"] == "16"  # table cells persist as formatted strings

    def test_non_jsonl_out_still_writes_text_report(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["batch", "--algorithms", "flood", "--sizes", "8",
                     "--trials", "2", "--out", str(out)]) == 0
        capsys.readouterr()
        assert "scenario matrix" in out.read_text()


class TestFaultAdversaryCli:
    """The fault-family grammar and error surface of the CLI verbs."""

    def test_unknown_family_exit_code_names_accepted_families(self, capsys):
        assert main(["batch", "--algorithms", "balls-into-leaves",
                     "--sizes", "8", "--adversary", "gremlin:x=1",
                     "--trials", "1"]) == 2
        err = capsys.readouterr().err
        assert "unknown adversary 'gremlin'" in err
        for family in ("omission", "omission-targeted", "delay", "corrupt"):
            assert family in err

    def test_bad_param_exit_code_names_accepted_params(self, capsys):
        assert main(["batch", "--algorithms", "balls-into-leaves",
                     "--sizes", "8", "--adversary", "omission:zap=1",
                     "--trials", "1"]) == 2
        err = capsys.readouterr().err
        assert "bad parameters for adversary 'omission'" in err
        assert "accepted: p, max_omissions, first, last" in err

    def test_bad_value_exit_code_keeps_param_vocabulary(self, capsys):
        assert main(["batch", "--algorithms", "balls-into-leaves",
                     "--sizes", "8", "--adversary", "omission:p=2.0",
                     "--trials", "1"]) == 2
        err = capsys.readouterr().err
        assert "must be in [0, 1]" in err
        assert "accepted: p, max_omissions, first, last" in err

    def test_omission_smoke_measures_instead_of_raising(self, capsys):
        assert main(["batch", "--algorithms", "balls-into-leaves",
                     "--sizes", "16", "--adversary", "omission:p=0.2",
                     "--trials", "5", "--no-check", "--capture-errors"]) == 0
        out = capsys.readouterr().out
        assert "omission:p=0.2" in out
        assert "fault-measurement mode" in out

    def test_checked_omission_cell_surfaces_the_violation(self, capsys):
        # Without --no-check the first duplicate name aborts the batch:
        # the spec checker still guards fault cells by default.
        assert main(["batch", "--algorithms", "balls-into-leaves",
                     "--sizes", "8", "--adversary", "omission:p=0.2",
                     "--trials", "2"]) == 2
        assert "uniqueness" in capsys.readouterr().err

    def test_delay_and_corrupt_grammar_build_and_run(self, capsys):
        assert main(["batch", "--algorithms", "balls-into-leaves",
                     "--sizes", "8",
                     "--adversary", "delay:d=2,rate=0.1",
                     "--adversary", "corrupt:b=1,rate=0.1",
                     "--trials", "1", "--no-check", "--capture-errors"]) == 0
        out = capsys.readouterr().out
        assert "delay:d=2,rate=0.1" in out
        assert "corrupt:b=1,rate=0.1" in out

    def test_hunt_fault_family_choice_is_validated(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["hunt", "--fault-family", "byzantine", "--budget", "4"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_hunt_omission_family_smoke(self, capsys):
        assert main(["hunt", "--objective", "rounds", "--strategy", "random",
                     "--fault-family", "omission", "--n", "8",
                     "--budget", "6", "--baseline-trials", "1",
                     "--no-shrink"]) == 0
        out = capsys.readouterr().out
        assert "worst cases on balls-into-leaves n=8" in out
        assert "omission" in out
        # the printed command must reproduce the *omission* hunt, not
        # fall back to the default crash family
        assert "--fault-family omission" in out
