"""CLI tests for the observability surface: scenario emission from
``hunt``, the ``explore`` timeline renderer, ``stats``, and the
``--trace`` / ``--telemetry`` knobs."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.core.instrumentation import TIMERS


@pytest.fixture(autouse=True)
def _sandbox(tmp_path, monkeypatch):
    """Every verb here writes files; keep them in a scratch CWD, and
    never leak the module-level telemetry collector on."""
    monkeypatch.chdir(tmp_path)
    yield
    TIMERS.disable()
    TIMERS.reset()


def _hunt(*extra):
    return main(
        ["hunt", "--n", "8", "--budget", "6", "--seed", "2",
         "--baseline-trials", "1", "--no-shrink", *extra]
    )


def _emitted_scenario():
    names = [n for n in os.listdir(".") if n.startswith("hunt-scenario-")]
    assert len(names) == 1
    return names[0]


class TestHuntScenarioEmission:
    def test_hunt_writes_scenario_and_trace_files(self, capsys):
        assert _hunt() == 0
        out = capsys.readouterr().out
        scenario_name = _emitted_scenario()
        assert f"scenario file: {scenario_name}" in out
        assert f"python -m repro explore {scenario_name}" in out
        with open(scenario_name, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["format"] == "repro-scenario/1"
        assert document["spec"]["digest"] in scenario_name
        assert document["schedule"]["events"]
        assert os.path.exists(document["trace"]["path"])

    def test_no_scenario_suppresses_the_files(self, capsys):
        assert _hunt("--no-scenario") == 0
        out = capsys.readouterr().out
        assert "scenario file:" not in out
        assert not [n for n in os.listdir(".") if n.endswith(".json")]

    def test_scenario_out_picks_the_path(self, tmp_path, capsys):
        target = tmp_path / "sub" / "winner.json"
        target.parent.mkdir()
        assert _hunt("--scenario-out", str(target)) == 0
        assert "winner.json" in capsys.readouterr().out
        document = json.loads(target.read_text(encoding="utf-8"))
        # The trace lands alongside the scenario, not in the CWD.
        assert (target.parent / document["trace"]["path"]).exists()

    def test_omission_family_scenario_round_trips(self, capsys):
        assert main(
            ["hunt", "--fault-family", "omission", "--n", "8", "--budget",
             "8", "--seed", "7", "--baseline-trials", "1", "--no-shrink"]
        ) == 0
        capsys.readouterr()
        scenario_name = _emitted_scenario()
        assert main(["explore", scenario_name, "--out", "t.html"]) == 0
        assert os.path.exists("t.html")


class TestExplore:
    def test_explore_renders_html_from_stored_trace(self, capsys):
        assert _hunt() == 0
        capsys.readouterr()
        scenario_name = _emitted_scenario()
        assert main(["explore", scenario_name]) == 0
        out = capsys.readouterr().out
        assert "timeline written to" in out
        assert "stored trace" in out
        html_name = [n for n in os.listdir(".") if n.endswith(".html")][0]
        with open(html_name, encoding="utf-8") as handle:
            html = handle.read()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html

    def test_hand_edited_scenario_replays_bit_identically(self, capsys):
        assert _hunt() == 0
        capsys.readouterr()
        scenario_name = _emitted_scenario()
        with open(scenario_name, encoding="utf-8") as handle:
            document = json.load(handle)
        # Perturb: push the first event one round later, by hand.
        event = document["schedule"]["events"][0]
        event[0] = event[0] + 1
        with open(scenario_name, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        assert main(
            ["explore", scenario_name, "--replay", "--out", "edited.html"]
        ) == 0
        captured = capsys.readouterr()
        assert (
            "bit-identical on the reference and columnar kernels"
            in captured.err
        )
        assert "replayed on the" in captured.out
        assert os.path.exists("edited.html")

    def test_edited_replay_is_deterministic(self, capsys):
        assert _hunt() == 0
        capsys.readouterr()
        scenario_name = _emitted_scenario()
        for out in ("a.html", "b.html"):
            assert main(
                ["explore", scenario_name, "--replay", "--out", out]
            ) == 0
        capsys.readouterr()
        with open("a.html", encoding="utf-8") as handle:
            first = handle.read()
        with open("b.html", encoding="utf-8") as handle:
            second = handle.read()
        assert first == second

    def test_missing_scenario_fails_cleanly(self, capsys):
        assert main(["explore", "nope.json"]) == 2
        assert "nope.json" in capsys.readouterr().err


class TestStatsAndTelemetry:
    def test_batch_telemetry_row_feeds_stats(self, capsys):
        assert main(
            ["batch", "--sizes", "8", "--trials", "2", "--seed", "1",
             "--telemetry", "--out", "batch.jsonl"]
        ) == 0
        err = capsys.readouterr().err
        assert "telemetry stages" in err
        rows = [
            json.loads(line)
            for line in open("batch.jsonl", encoding="utf-8")
        ]
        assert rows[-1]["kind"] == "telemetry"
        assert rows[-1]["stages"]
        assert main(["stats", "batch.jsonl"]) == 0
        out = capsys.readouterr().out
        assert "telemetry stages" in out
        assert "total run elapsed" in out

    def test_stats_merges_files_and_writes_out(self, capsys):
        assert main(
            ["batch", "--sizes", "8", "--trials", "2", "--seed", "1",
             "--out", "plain.jsonl"]
        ) == 0
        capsys.readouterr()
        assert main(["stats", "plain.jsonl", "--out", "report.txt"]) == 0
        capsys.readouterr()
        with open("report.txt", encoding="utf-8") as handle:
            report = handle.read()
        assert "plain.jsonl" in report
        assert "trial rows" in report

    def test_stats_missing_file_fails_cleanly(self, capsys):
        assert main(["stats", "nope.jsonl"]) == 2
        assert "nope.jsonl" in capsys.readouterr().err

    def test_batch_trace_flag_keeps_output_identical(self, capsys):
        args = ["batch", "--sizes", "8", "--trials", "2", "--seed", "3"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--trace", "cheap"]) == 0
        traced = capsys.readouterr().out
        assert traced == plain

    def test_hunt_telemetry_smoke(self, capsys):
        assert _hunt("--telemetry", "--no-scenario") == 0
        assert "telemetry stages" in capsys.readouterr().err
