"""Numeric verification of the Figure 3 probability facts."""

from __future__ import annotations

import math

import pytest

from repro.analysis.concentration import (
    binomial_deviation_probability,
    binomial_pmf,
    chernoff_deviation_bound,
    iterated_sqrt_trajectory,
    lemma4_bound,
    lemma6_occupancy_bound,
    lemma6_phase_budget,
)


class TestBinomialPmf:
    def test_sums_to_one(self):
        total = sum(binomial_pmf(20, k, 0.3) for k in range(21))
        assert total == pytest.approx(1.0)

    def test_degenerate_p(self):
        assert binomial_pmf(5, 0, 0.0) == 1.0
        assert binomial_pmf(5, 5, 1.0) == 1.0
        assert binomial_pmf(5, 3, 0.0) == 0.0

    def test_out_of_range_k(self):
        assert binomial_pmf(5, 6, 0.5) == 0.0
        assert binomial_pmf(5, -1, 0.5) == 0.0

    def test_symmetry_at_half(self):
        assert binomial_pmf(10, 3, 0.5) == pytest.approx(binomial_pmf(10, 7, 0.5))


class TestFact1:
    """Larger M gives larger deviation probability at the same threshold."""

    @pytest.mark.parametrize("p", [0.2, 0.5, 0.8])
    def test_monotone_in_m(self, p):
        x = 2.0
        small = binomial_deviation_probability(20, p, x)
        large = binomial_deviation_probability(60, p, x)
        assert small <= large + 1e-12


class TestFact2:
    """p = 1/2 maximizes the deviation probability."""

    @pytest.mark.parametrize("p", [0.1, 0.25, 0.4])
    def test_half_dominates(self, p):
        m, x = 40, 3.0
        skewed = binomial_deviation_probability(m, p, x)
        balanced = binomial_deviation_probability(m, 0.5, x)
        assert skewed <= balanced + 1e-12


class TestFact3Chernoff:
    @pytest.mark.parametrize("m,p", [(50, 0.5), (100, 0.2), (200, 0.7)])
    def test_bound_dominates_exact_tail(self, m, p):
        for x in (math.sqrt(m) / 2, math.sqrt(m), 2 * math.sqrt(m)):
            exact = binomial_deviation_probability(m, p, x)
            bound = chernoff_deviation_bound(m, p, x)
            assert exact <= bound + 1e-9

    def test_degenerate_inputs(self):
        assert chernoff_deviation_bound(0, 0.5, 1.0) == 0.0
        assert chernoff_deviation_bound(10, 0.0, 0.0) == 1.0


class TestLemmaBounds:
    def test_lemma4_scales_with_subtree(self):
        assert lemma4_bound(1024, 0) > lemma4_bound(1024, 5)
        assert lemma4_bound(2, 0) >= 0.0

    def test_lemma6_budget_grows_slowly(self):
        assert lemma6_phase_budget(16) <= lemma6_phase_budget(2**16)
        assert lemma6_phase_budget(2**16) <= 6

    def test_lemma6_occupancy_bound(self):
        assert lemma6_occupancy_bound(1024) == pytest.approx(100.0)

    def test_iterated_sqrt_contracts(self):
        trajectory = iterated_sqrt_trajectory(10_000.0, 1.0, 6)
        assert trajectory[-1] < trajectory[0]
        assert trajectory[-1] == pytest.approx(10_000.0 ** (1 / 64), rel=1e-6)
