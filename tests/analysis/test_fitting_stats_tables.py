"""Unit tests for fitting, statistics, tables, and ASCII plots."""

from __future__ import annotations

import math

import pytest

from repro.analysis.ascii_plot import line_plot
from repro.analysis.fitting import best_model, fit_growth_models
from repro.analysis.stats import fraction_within, percentile, summarize
from repro.analysis.tables import Table


class TestFitting:
    def test_recovers_loglog_growth(self):
        ns = [2**k for k in range(4, 14)]
        ys = [3.0 + 2.0 * math.log2(math.log2(n)) for n in ns]
        fit = best_model(ns, ys)
        assert fit.model == "loglog"
        assert fit.slope == pytest.approx(2.0, rel=1e-6)
        assert fit.intercept == pytest.approx(3.0, rel=1e-6)

    def test_recovers_log_growth(self):
        ns = [2**k for k in range(4, 14)]
        ys = [1.0 + 0.5 * math.log2(n) for n in ns]
        assert best_model(ns, ys).model == "log"

    def test_recovers_linear_growth(self):
        ns = [10, 20, 40, 80, 160]
        ys = [2 * n + 1 for n in ns]
        fit = best_model(ns, ys)
        assert fit.model == "linear"
        assert fit.slope == pytest.approx(2.0)

    def test_recovers_constant(self):
        ns = [16, 64, 256, 1024]
        ys = [3.0, 3.0, 3.0, 3.0]
        fit = best_model(ns, ys)
        assert fit.model == "const"
        assert fit.rmse == pytest.approx(0.0)

    def test_results_sorted_by_rmse(self):
        ns = [2**k for k in range(4, 10)]
        ys = [math.log2(n) for n in ns]
        fits = fit_growth_models(ns, ys)
        rmses = [fit.rmse for fit in fits]
        assert rmses == sorted(rmses)

    def test_predict(self):
        ns = [16, 64, 256]
        ys = [4.0, 6.0, 8.0]
        fit = best_model(ns, ys, models=("log",))
        assert fit.predict(64) == pytest.approx(6.0, abs=0.2)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_growth_models([1, 2], [1.0])

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_growth_models([4], [1.0])


class TestStats:
    def test_summary_values(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.count == 5
        assert stats.mean == 3.0
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.p50 == 3.0

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([1, 2, 3, 4], 100) == 4.0
        assert percentile([7], 30) == 7.0

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_fraction_within(self):
        assert fraction_within([1, 2, 3, 4], 2) == 0.5
        with pytest.raises(ValueError):
            fraction_within([], 1)

    def test_str_rendering(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 2.5)
        text = table.render()
        assert "== demo ==" in text
        assert "alpha" in text
        assert "2.500" in text

    def test_row_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_csv_export(self):
        table = Table("demo", ["a", "b"], notes="ignored in csv")
        table.add_row(1, 2)
        assert table.to_csv() == "a,b\n1,2\n"

    def test_notes_rendered(self):
        table = Table("demo", ["a"], notes="hello")
        assert "note: hello" in table.render()

    def test_rows_copy(self):
        table = Table("demo", ["a"])
        table.add_row(1)
        rows = table.rows
        rows[0][0] = "mutated"
        assert table.rows[0][0] == "1"


class TestLinePlot:
    def test_plot_contains_marks_and_legend(self):
        text = line_plot(
            {"a": [1, 2, 3], "b": [3, 2, 1]},
            xs=[1, 2, 3],
            title="t",
            width=20,
            height=5,
        )
        assert "t" in text
        assert "legend" in text
        assert "*" in text and "+" in text

    def test_plot_validates_lengths(self):
        with pytest.raises(ValueError):
            line_plot({"a": [1]}, xs=[1, 2])

    def test_plot_rejects_empty(self):
        with pytest.raises(ValueError):
            line_plot({}, xs=[])

    def test_constant_series(self):
        text = line_plot({"flat": [2, 2, 2]}, xs=[0, 1, 2], width=10, height=3)
        assert "flat" in text
