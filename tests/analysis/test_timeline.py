"""The timeline explorer: trace -> self-contained HTML/SVG."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.timeline import render_timeline
from repro.ids import sparse_ids
from repro.search.schedule import CrashEvent, Schedule
from repro.sim.runner import run_renaming
from repro.sim.trace import Trace


def _traced_run(**kwargs):
    n = kwargs.pop("n", 9)
    schedule = Schedule.of(
        n, [CrashEvent(1, 0, (1,)), CrashEvent(2, 3, (4,), "omit")]
    )
    return run_renaming(
        "balls-into-leaves",
        sparse_ids(n),
        seed=2,
        adversary=schedule.compile(sparse_ids(n)),
        kernel="columnar",
        trace="cheap",
        check=False,
        **kwargs,
    )


def _svg(html):
    """Parse the embedded SVG (also proves it is well-formed XML)."""
    start = html.index("<svg")
    end = html.index("</svg>") + len("</svg>")
    return ET.fromstring(html[start:end])


class TestRenderTimeline:
    def test_self_contained_html_document(self):
        run = _traced_run()
        html = render_timeline(run.trace, title="demo n=9")
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html and "<script" not in html
        assert "demo n=9" in html
        _svg(html)

    def test_one_lane_per_participant(self):
        run = _traced_run()
        participants = list(sparse_ids(9))
        html = render_timeline(
            run.trace, title="t", participants=participants
        )
        for pid in participants:
            assert str(pid) in html

    def test_fault_markers_have_tooltips(self):
        run = _traced_run(halt_on_name=True)
        html = render_timeline(run.trace, title="t")
        assert "crashed" in html
        assert "broadcast dropped" in html
        assert "decided name" in html
        assert "halted with name" in html
        titles = [el.text for el in _svg(html).iter() if el.tag.endswith("title")]
        assert any("crashed" in t for t in titles)
        assert any("broadcast dropped" in t for t in titles)

    def test_meta_table_rendered_and_escaped(self):
        run = _traced_run()
        html = render_timeline(
            run.trace,
            title="<script>alert(1)</script>",
            meta={"note": "a < b & c"},
        )
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html
        assert "a &lt; b &amp; c" in html

    def test_namespace_band_tracks_name_events(self):
        run = _traced_run()
        html = render_timeline(run.trace, title="t")
        assert "named" in html

    def test_livelock_reads_as_flat_running_strip(self):
        # A synthetic livelock: rounds keep passing, nobody ever names.
        trace = Trace()
        for round_no in range(1, 41):
            trace.record(round_no, "round", sent=8, crashes=0, running=8)
        html = render_timeline(trace, title="livelock")
        assert "running" in html
        _svg(html)

    def test_empty_trace_still_renders(self):
        html = render_timeline(Trace(), title="empty")
        assert html.startswith("<!DOCTYPE html>")

    def test_full_reference_trace_renders_too(self):
        run = run_renaming(
            "balls-into-leaves", sparse_ids(6), seed=1, trace="full"
        )
        html = render_timeline(run.trace, title="full")
        _svg(html)
        assert "round" in html
