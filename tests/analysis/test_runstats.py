"""`repro stats`: jsonl aggregation and telemetry summaries."""

from __future__ import annotations

import json

import pytest

from repro.analysis.runstats import (
    load_rows,
    render_stats,
    split_telemetry,
    telemetry_table,
    trial_table,
)
from repro.errors import ReproError


def _trial_row(rounds, *, algorithm="balls-into-leaves", n=8,
               adversary="none", error=None, violations=0):
    return {
        "algorithm": algorithm,
        "n": n,
        "adversary": adversary,
        "rounds": rounds,
        "error": error,
        "violations": violations,
    }


def _telemetry_row(**stages):
    return {
        "kind": "telemetry",
        "stages": {
            name: {"calls": calls, "seconds": seconds}
            for name, (calls, seconds) in stages.items()
        },
        "elapsed": 1.25,
        "executor": "serial",
    }


def _write_jsonl(path, rows):
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    return str(path)


class TestLoadAndSplit:
    def test_load_rows_round_trips_jsonl(self, tmp_path):
        rows = [_trial_row(5), _trial_row(7)]
        path = _write_jsonl(tmp_path / "run.jsonl", rows)
        assert load_rows(path) == rows

    def test_load_rows_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\n{broken\n', encoding="utf-8")
        with pytest.raises(ReproError):
            load_rows(str(path))

    def test_load_rows_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_rows(str(tmp_path / "nope.jsonl"))

    def test_split_telemetry_partitions(self):
        rows = [_trial_row(5), _telemetry_row(seeding=(2, 0.1)), _trial_row(6)]
        data, telemetry = split_telemetry(rows)
        assert [r["rounds"] for r in data] == [5, 6]
        assert len(telemetry) == 1


class TestTrialTable:
    def test_groups_by_cell(self):
        rows = (
            [_trial_row(r) for r in (5, 7, 9)]
            + [_trial_row(r, n=16, adversary="random") for r in (11, 13)]
        )
        table = trial_table(rows)
        assert len(table.rows) == 2
        rendered = table.render()
        assert "n=8" in rendered and "n=16" in rendered

    def test_reports_errors_and_round_stats(self):
        rows = [
            _trial_row(10),
            _trial_row(30),
            _trial_row(0, error="RoundLimitExceeded: ..."),
        ]
        table = trial_table(rows)
        row = table.row_dicts()[0]
        assert int(row["trials"]) == 3
        assert int(row["errors"]) == 1

    def test_empty_rows_yield_empty_table(self):
        assert trial_table([]).rows == []


class TestTelemetryTable:
    def test_sums_stages_across_records(self):
        table = telemetry_table([
            _telemetry_row(seeding=(1, 0.2), movement=(10, 0.6)),
            _telemetry_row(seeding=(1, 0.2), monitor=(5, 0.1)),
        ])
        rows = {row["stage"]: row for row in table.row_dicts()}
        assert int(rows["seeding"]["calls"]) == 2
        assert float(rows["seeding"]["seconds"]) == pytest.approx(0.4, abs=1e-3)
        assert int(rows["movement"]["calls"]) == 10
        # Shares sum to ~100% of the staged time.
        shares = [float(r["share"].rstrip("%")) for r in rows.values()]
        assert sum(shares) == pytest.approx(100.0, abs=1.0)


class TestRenderStats:
    def test_renders_counts_tables_and_elapsed(self, tmp_path):
        path = _write_jsonl(
            tmp_path / "run.jsonl",
            [_trial_row(5), _trial_row(9),
             _telemetry_row(seeding=(2, 0.3), movement=(20, 0.9))],
        )
        report = render_stats([path])
        assert "run.jsonl" in report
        assert "2 data row(s)" in report
        assert "seeding" in report and "movement" in report
        assert "total run elapsed" in report

    def test_merges_multiple_files(self, tmp_path):
        first = _write_jsonl(tmp_path / "a.jsonl", [_trial_row(5)])
        second = _write_jsonl(
            tmp_path / "b.jsonl", [_trial_row(7, adversary="random")]
        )
        report = render_stats([first, second])
        assert "a.jsonl" in report and "b.jsonl" in report
        assert "random" in report

    def test_no_telemetry_means_no_stage_table(self, tmp_path):
        path = _write_jsonl(tmp_path / "run.jsonl", [_trial_row(5)])
        report = render_stats([path])
        assert "0 telemetry record(s)" in report
        assert "telemetry stages" not in report
