"""Unit tests for the balls-into-bins strategies."""

from __future__ import annotations

import math
import random

import pytest

from repro.loadbalance.bins import BinLoads, load_histogram, loads_from_assignment
from repro.loadbalance.faulty import crash_faulted_parallel_retry
from repro.loadbalance.parallel_retry import parallel_retry
from repro.loadbalance.single_choice import single_choice
from repro.loadbalance.two_choice import two_choice


class TestBinLoads:
    def test_aggregates(self):
        loads = BinLoads([0, 2, 1, 1])
        assert loads.n_bins == 4
        assert loads.n_balls == 4
        assert loads.max_load == 2
        assert loads.empty_bins == 1
        assert not loads.is_perfect

    def test_perfect_allocation(self):
        assert BinLoads([1, 1, 1]).is_perfect

    def test_histogram(self):
        assert load_histogram([0, 2, 1, 1]) == {0: 1, 1: 2, 2: 1}

    def test_loads_from_assignment(self):
        assert loads_from_assignment([0, 0, 2], 3) == [2, 0, 1]


class TestSingleChoice:
    def test_places_all_balls(self):
        loads = single_choice(100, 100, random.Random(0))
        assert loads.n_balls == 100

    def test_max_load_grows_like_log_over_loglog(self):
        n = 4096
        trials = [single_choice(n, n, random.Random(s)).max_load for s in range(5)]
        expected = math.log(n) / math.log(math.log(n))
        assert expected / 2 < sum(trials) / 5 < expected * 3

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            single_choice(1, 0, random.Random(0))


class TestTwoChoice:
    def test_beats_single_choice(self):
        n = 4096
        singles = [single_choice(n, n, random.Random(s)).max_load for s in range(5)]
        doubles = [two_choice(n, n, random.Random(s)).max_load for s in range(5)]
        assert sum(doubles) < sum(singles)

    def test_max_load_near_loglog(self):
        n = 4096
        loads = [two_choice(n, n, random.Random(s)).max_load for s in range(5)]
        assert max(loads) <= math.log2(math.log2(n)) + 3

    def test_more_choices_never_worse(self):
        n = 1024
        two = two_choice(n, n, random.Random(1), choices=2).max_load
        four = two_choice(n, n, random.Random(1), choices=4).max_load
        assert four <= two + 1

    def test_rejects_zero_choices(self):
        with pytest.raises(ValueError):
            two_choice(4, 4, random.Random(0), choices=0)


class TestParallelRetry:
    def test_reaches_one_to_one(self):
        outcome = parallel_retry(512, 512, random.Random(3))
        assert outcome.one_to_one
        assert len(outcome.assignment) == 512

    def test_rounds_are_doubly_logarithmic_ish(self):
        rounds = [parallel_retry(4096, 4096, random.Random(s)).rounds for s in range(3)]
        assert max(rounds) <= 4 * math.log2(math.log2(4096)) + 6

    def test_unplaced_counts_decrease(self):
        outcome = parallel_retry(256, 256, random.Random(0))
        counts = outcome.per_round_unplaced
        assert counts[0] == 256
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_rejects_more_balls_than_bins(self):
        with pytest.raises(ValueError):
            parallel_retry(5, 4, random.Random(0))

    def test_fewer_balls_than_bins(self):
        outcome = parallel_retry(10, 100, random.Random(0))
        assert outcome.one_to_one


class TestFaultyAllocation:
    def test_no_loss_stays_one_to_one(self):
        outcome = crash_faulted_parallel_retry(128, 128, random.Random(0),
                                               announcement_loss_rate=0.0)
        assert outcome.one_to_one

    def test_losses_create_duplicates(self):
        duplicates = 0
        for seed in range(5):
            outcome = crash_faulted_parallel_retry(
                128, 128, random.Random(seed), announcement_loss_rate=0.3
            )
            duplicates += len(outcome.duplicate_bins)
        assert duplicates > 0  # the uniqueness violation the paper warns about

    def test_rejects_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            crash_faulted_parallel_retry(4, 4, random.Random(0),
                                         announcement_loss_rate=1.5)

    def test_rejects_more_balls_than_bins(self):
        with pytest.raises(ValueError):
            crash_faulted_parallel_retry(5, 4, random.Random(0))
